// Pooled in-flight packet nodes.
//
// Links and Paths used to carry each in-flight packet inside a closure
// (capturing a Packet plus its DeliveryFn by value — ~150 bytes, a heap
// allocation per hop per packet). TransitPool keeps those {Packet, sink}
// pairs in a free-listed slab addressed by 32-bit index, so the closures a
// hop schedules capture only {this, index}. Nodes are refcounted because a
// Path hands a node through a link it does not control: the link invoking —
// or dropping — the delivery functor releases the ref via the functor's
// destructor, which makes packet drops leak-free by construction.
//
// `next` doubles as the free-list link and an intrusive queue link (FairLink
// chains a flow's queued packets through it); a node is never on both.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>

#include "netsim/link_base.hpp"
#include "netsim/packet.hpp"

namespace swiftest::netsim {

inline constexpr std::uint32_t kTransitNil = 0xffffffffu;

struct TransitNode {
  Packet packet;
  LinkBase::DeliveryFn sink;
  std::uint32_t refs = 0;
  std::uint32_t next = kTransitNil;
};

class TransitPool {
 public:
  TransitPool() = default;
  TransitPool(const TransitPool&) = delete;
  TransitPool& operator=(const TransitPool&) = delete;

  /// Allocates a node with one reference and vacant packet/sink slots.
  std::uint32_t alloc() {
    std::uint32_t idx;
    if (free_head_ != kTransitNil) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    TransitNode& n = nodes_[idx];
    n.refs = 1;
    n.next = kTransitNil;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return idx;
  }

  [[nodiscard]] TransitNode& at(std::uint32_t idx) noexcept { return nodes_[idx]; }

  void add_ref(std::uint32_t idx) noexcept { ++nodes_[idx].refs; }

  void release(std::uint32_t idx) noexcept {
    TransitNode& n = nodes_[idx];
    assert(n.refs > 0);
    if (--n.refs == 0) {
      // Drop payload/sink refcounts now; a node parked on the free list must
      // not pin arena payloads or captured state until its slot is reused.
      n.packet = Packet{};
      n.sink.reset();
      n.next = free_head_;
      free_head_ = idx;
      --live_;
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// High-water mark of simultaneously live nodes — the pool occupancy the
  /// resource monitor reports (capacity never shrinks, so peak ≈ capacity
  /// once warm; the distinction matters for budget sizing).
  [[nodiscard]] std::size_t peak_live() const noexcept { return peak_live_; }

 private:
  // deque: stable node addresses while the slab grows, so a TransitNode&
  // held across an alloc() stays valid.
  std::deque<TransitNode> nodes_;
  std::uint32_t free_head_ = kTransitNil;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace swiftest::netsim
