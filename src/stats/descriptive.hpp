// Descriptive statistics over sample vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swiftest::stats {

/// Summary of a sample: the numbers the paper reports for each distribution.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // population variance
[[nodiscard]] double stddev(std::span<const double> xs);

/// Quantile by linear interpolation between closest ranks; q in [0, 1].
/// The input need not be sorted (a sorted copy is made internally).
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile over an already-sorted sample; avoids the internal copy.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

[[nodiscard]] double median(std::span<const double> xs);

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Fraction of samples strictly below `threshold`.
[[nodiscard]] double fraction_below(std::span<const double> xs, double threshold);

/// Fraction of samples strictly above `threshold`.
[[nodiscard]] double fraction_above(std::span<const double> xs, double threshold);

/// Mean of the samples strictly above `threshold` (0 if none).
[[nodiscard]] double mean_above(std::span<const double> xs, double threshold);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1 = perfectly equal
/// allocations, 1/n = one party takes everything.
[[nodiscard]] double jain_fairness(std::span<const double> allocations);

}  // namespace swiftest::stats
