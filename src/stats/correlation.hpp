// Correlation measures used by the RSS/SNR/bandwidth analyses (§3.3).
#pragma once

#include <span>

namespace swiftest::stats {

/// Pearson linear correlation coefficient. Returns 0 for degenerate inputs.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace swiftest::stats
