// Histograms, empirical CDFs, and binned PDFs — the plotting primitives behind
// the paper's distribution figures (Figs 4, 7, 13-16, 18, 19, 22, 26).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace swiftest::stats {

/// Fixed-width-bin histogram over [lo, hi). Out-of-range samples are clamped
/// into the first/last bin so that totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Probability density at each bin center (integrates to ~1 over the range).
  [[nodiscard]] std::vector<double> density() const;

  /// Fraction of samples per bin.
  [[nodiscard]] std::vector<double> frequencies() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF built from a sample; answers F(x) and quantile queries.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> xs);

  /// F(x) = fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF by linear interpolation; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t sample_count() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

  /// Largest pointwise gap to another empirical CDF (two-sample
  /// Kolmogorov-Smirnov statistic); used by generator-calibration tests.
  [[nodiscard]] double ks_distance(const EmpiricalCdf& other) const;

 private:
  std::vector<double> sorted_;
};

/// Renders a compact fixed-width ASCII chart of a series — used by the bench
/// binaries so each figure is eyeball-checkable from the terminal.
[[nodiscard]] std::string ascii_chart(std::span<const double> ys, std::size_t height = 10);

}  // namespace swiftest::stats
