#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace swiftest::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

double fraction_below(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double fraction_above(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double jain_fairness(std::span<const double> allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

double mean_above(std::span<const double> xs, double threshold) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > threshold) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace swiftest::stats
