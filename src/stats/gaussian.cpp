#include "stats/gaussian.hpp"

#include <cmath>
#include <numbers>

namespace swiftest::stats {

double Gaussian::pdf(double x) const {
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) / (stddev * std::sqrt(2.0 * std::numbers::pi));
}

double Gaussian::log_pdf(double x) const {
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) - 0.5 * std::log(2.0 * std::numbers::pi);
}

double Gaussian::cdf(double x) const {
  return 0.5 * (1.0 + std::erf((x - mean) / (stddev * std::numbers::sqrt2)));
}

}  // namespace swiftest::stats
