#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace swiftest::stats {
namespace {

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("spearman: size mismatch");
  const auto rx = fractional_ranks(xs);
  const auto ry = fractional_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace swiftest::stats
