#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swiftest::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + width_ * (static_cast<double>(bin) + 0.5);
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = static_cast<double>(counts_[i]) * norm;
  }
  return d;
}

std::vector<double> Histogram::frequencies() const {
  std::vector<double> f(counts_.size(), 0.0);
  if (total_ == 0) return f;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    f[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return f;
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double EmpiricalCdf::ks_distance(const EmpiricalCdf& other) const {
  double max_gap = 0.0;
  for (double x : sorted_) max_gap = std::max(max_gap, std::abs(at(x) - other.at(x)));
  for (double x : other.sorted_) max_gap = std::max(max_gap, std::abs(at(x) - other.at(x)));
  return max_gap;
}

std::string ascii_chart(std::span<const double> ys, std::size_t height) {
  if (ys.empty() || height == 0) return "";
  const double hi = *std::max_element(ys.begin(), ys.end());
  const double lo = std::min(0.0, *std::min_element(ys.begin(), ys.end()));
  const double range = hi - lo > 0 ? hi - lo : 1.0;
  std::string out;
  out.reserve((ys.size() + 1) * height);
  for (std::size_t row = 0; row < height; ++row) {
    const double level = hi - range * static_cast<double>(row) / static_cast<double>(height);
    for (double y : ys) out.push_back(y >= level ? '#' : ' ');
    out.push_back('\n');
  }
  return out;
}

}  // namespace swiftest::stats
