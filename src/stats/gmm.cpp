#include "stats/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace swiftest::stats {
namespace {

// log(sum(exp(xs))) without overflow.
double log_sum_exp(std::span<const double> xs) {
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

// k-means++ seeding followed by a few Lloyd iterations; returns k centers.
std::vector<double> kmeans_centers(std::span<const double> xs, std::size_t k, core::Rng& rng) {
  std::vector<double> centers;
  centers.reserve(k);
  centers.push_back(xs[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))]);
  std::vector<double> d2(xs.size());
  while (centers.size() < k) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (double c : centers) best = std::min(best, (xs[i] - c) * (xs[i] - c));
      d2[i] = best;
    }
    const std::size_t idx = rng.weighted_index(d2);
    centers.push_back(xs[idx]);
  }
  // A few Lloyd iterations to settle the seeds.
  std::vector<double> sums(k), counts(k);
  for (int iter = 0; iter < 10; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0.0);
    for (double x : xs) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t j = 0; j < k; ++j) {
        const double d = (x - centers[j]) * (x - centers[j]);
        if (d < best_d) {
          best_d = d;
          best = j;
        }
      }
      sums[best] += x;
      counts[best] += 1.0;
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] > 0) centers[j] = sums[j] / counts[j];
    }
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

EmFit run_em_once(std::span<const double> xs, std::size_t k, const EmOptions& opts,
                  core::Rng& rng) {
  const std::size_t n = xs.size();
  const auto centers = kmeans_centers(xs, k, rng);

  // Initial parameters: equal weights, k-means centers, global spread.
  double global_sd = 0.0;
  {
    double m = 0.0;
    for (double x : xs) m += x;
    m /= static_cast<double>(n);
    for (double x : xs) global_sd += (x - m) * (x - m);
    global_sd = std::sqrt(global_sd / static_cast<double>(n));
    if (global_sd < opts.min_stddev) global_sd = opts.min_stddev;
  }
  std::vector<MixtureComponent> comps(k);
  for (std::size_t j = 0; j < k; ++j) {
    comps[j].weight = 1.0 / static_cast<double>(k);
    comps[j].dist = {centers[j], global_sd / static_cast<double>(k)};
    if (comps[j].dist.stddev < opts.min_stddev) comps[j].dist.stddev = opts.min_stddev;
  }

  std::vector<double> log_resp(k);               // per-sample log responsibilities
  std::vector<double> resp_sum(k), mu_sum(k), var_sum(k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  EmFit fit;

  for (std::size_t iter = 1; iter <= opts.max_iterations; ++iter) {
    std::fill(resp_sum.begin(), resp_sum.end(), 0.0);
    std::fill(mu_sum.begin(), mu_sum.end(), 0.0);
    std::fill(var_sum.begin(), var_sum.end(), 0.0);
    double ll = 0.0;

    // E step (and accumulation for the M step in one pass).
    for (double x : xs) {
      for (std::size_t j = 0; j < k; ++j) {
        log_resp[j] = std::log(comps[j].weight) + comps[j].dist.log_pdf(x);
      }
      const double lse = log_sum_exp(log_resp);
      ll += lse;
      for (std::size_t j = 0; j < k; ++j) {
        const double r = std::exp(log_resp[j] - lse);
        resp_sum[j] += r;
        mu_sum[j] += r * x;
      }
    }

    // M step: means and weights.
    for (std::size_t j = 0; j < k; ++j) {
      if (resp_sum[j] < 1e-12) {
        // Dead component: re-seed on a random sample to keep k alive.
        comps[j].dist.mean = xs[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
        comps[j].weight = 1.0 / static_cast<double>(n);
        continue;
      }
      comps[j].dist.mean = mu_sum[j] / resp_sum[j];
      comps[j].weight = resp_sum[j] / static_cast<double>(n);
    }
    // Second pass for variances against the updated means.
    for (double x : xs) {
      for (std::size_t j = 0; j < k; ++j) {
        log_resp[j] = std::log(comps[j].weight) + comps[j].dist.log_pdf(x);
      }
      const double lse = log_sum_exp(log_resp);
      for (std::size_t j = 0; j < k; ++j) {
        const double r = std::exp(log_resp[j] - lse);
        const double d = x - comps[j].dist.mean;
        var_sum[j] += r * d * d;
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (resp_sum[j] < 1e-12) continue;
      comps[j].dist.stddev = std::max(opts.min_stddev, std::sqrt(var_sum[j] / resp_sum[j]));
    }

    fit.iterations = iter;
    fit.log_likelihood = ll;
    if (std::isfinite(prev_ll) &&
        std::abs(ll - prev_ll) <= opts.tolerance * (std::abs(prev_ll) + 1.0)) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }

  std::sort(comps.begin(), comps.end(),
            [](const MixtureComponent& a, const MixtureComponent& b) {
              return a.dist.mean < b.dist.mean;
            });
  fit.mixture = GaussianMixture(std::move(comps));
  return fit;
}

}  // namespace

GaussianMixture::GaussianMixture(std::vector<MixtureComponent> components)
    : components_(std::move(components)) {
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight < 0.0) throw std::invalid_argument("GaussianMixture: negative weight");
    if (c.dist.stddev <= 0.0) throw std::invalid_argument("GaussianMixture: non-positive stddev");
    total += c.weight;
  }
  if (total <= 0.0) throw std::invalid_argument("GaussianMixture: zero total weight");
  for (auto& c : components_) c.weight /= total;
}

double GaussianMixture::pdf(double x) const {
  double p = 0.0;
  for (const auto& c : components_) p += c.weight * c.dist.pdf(x);
  return p;
}

double GaussianMixture::log_likelihood(std::span<const double> xs) const {
  double ll = 0.0;
  for (double x : xs) ll += std::log(std::max(pdf(x), 1e-300));
  return ll;
}

double GaussianMixture::sample(core::Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(components_.size());
  for (const auto& c : components_) weights.push_back(c.weight);
  const auto& chosen = components_[rng.weighted_index(weights)];
  return rng.normal(chosen.dist.mean, chosen.dist.stddev);
}

std::vector<double> GaussianMixture::mode_means() const {
  std::vector<double> means;
  means.reserve(components_.size());
  for (const auto& c : components_) means.push_back(c.dist.mean);
  std::sort(means.begin(), means.end());
  return means;
}

double GaussianMixture::most_probable_mode() const {
  if (components_.empty()) return 0.0;
  const auto it = std::max_element(components_.begin(), components_.end(),
                                   [](const MixtureComponent& a, const MixtureComponent& b) {
                                     return a.weight < b.weight;
                                   });
  return it->dist.mean;
}

double GaussianMixture::most_probable_mode_above(double floor) const {
  double best_mean = floor;
  double best_weight = -1.0;
  for (const auto& c : components_) {
    if (c.dist.mean > floor && c.weight > best_weight) {
      best_weight = c.weight;
      best_mean = c.dist.mean;
    }
  }
  return best_mean;
}

EmFit fit_gmm(std::span<const double> xs, std::size_t k, const EmOptions& opts) {
  if (k == 0) throw std::invalid_argument("fit_gmm: k must be > 0");
  if (xs.size() < k) throw std::invalid_argument("fit_gmm: fewer samples than components");
  core::Rng rng(opts.seed);
  EmFit best;
  best.log_likelihood = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < std::max<std::size_t>(1, opts.restarts); ++r) {
    EmFit fit = run_em_once(xs, k, opts, rng);
    if (fit.log_likelihood > best.log_likelihood) best = std::move(fit);
  }
  return best;
}

double bic(const EmFit& fit, std::size_t sample_count) {
  // Each component has weight, mean, stddev; weights sum to 1 (one constraint).
  const double k_params =
      static_cast<double>(fit.mixture.component_count() * 3 - 1);
  return k_params * std::log(static_cast<double>(sample_count)) - 2.0 * fit.log_likelihood;
}

EmFit fit_gmm_bic(std::span<const double> xs, std::size_t min_k, std::size_t max_k,
                  const EmOptions& opts) {
  if (min_k == 0 || max_k < min_k) throw std::invalid_argument("fit_gmm_bic: bad k range");
  EmFit best;
  double best_bic = std::numeric_limits<double>::infinity();
  for (std::size_t k = min_k; k <= max_k && k <= xs.size(); ++k) {
    EmFit fit = fit_gmm(xs, k, opts);
    const double b = bic(fit, xs.size());
    if (b < best_bic) {
      best_bic = b;
      best = std::move(fit);
    }
  }
  return best;
}

}  // namespace swiftest::stats
