// Single Gaussian distribution utilities.
#pragma once

namespace swiftest::stats {

/// A univariate normal distribution N(mean, stddev^2).
struct Gaussian {
  double mean = 0.0;
  double stddev = 1.0;

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double log_pdf(double x) const;
  /// Cumulative distribution via erf.
  [[nodiscard]] double cdf(double x) const;
};

}  // namespace swiftest::stats
