// Multi-modal Gaussian mixture model.
//
// §5.1 of the paper: "for a given access technology, its access bandwidth X in
// fact follows a multi-modal Gaussian distribution
//     P(X) = sum_i w_i * N(X | mu_i, sigma_i)".
// Swiftest fits this mixture to recent test results per technology and uses
// the modes to choose probing rates. This module provides the mixture itself,
// EM fitting with k-means++ initialisation, and BIC-based selection of the
// component count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "stats/gaussian.hpp"

namespace swiftest::stats {

/// One component of a mixture: weight w_i and N(mu_i, sigma_i^2).
struct MixtureComponent {
  double weight = 1.0;
  Gaussian dist;
};

class GaussianMixture {
 public:
  GaussianMixture() = default;
  explicit GaussianMixture(std::vector<MixtureComponent> components);

  [[nodiscard]] const std::vector<MixtureComponent>& components() const noexcept {
    return components_;
  }
  [[nodiscard]] std::size_t component_count() const noexcept { return components_.size(); }

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double log_likelihood(std::span<const double> xs) const;

  /// Draws one sample (component chosen by weight, then its Gaussian).
  [[nodiscard]] double sample(core::Rng& rng) const;

  /// Mode means sorted ascending.
  [[nodiscard]] std::vector<double> mode_means() const;

  /// Mean of the highest-weight component — Swiftest's initial probing rate.
  [[nodiscard]] double most_probable_mode() const;

  /// Among modes with mean strictly greater than `floor`, returns the mean of
  /// the highest-weight one; returns `floor` itself if none exists. This is
  /// the §5.1 escalation rule ("the most probable one among these larger
  /// 'modal' bandwidth values").
  [[nodiscard]] double most_probable_mode_above(double floor) const;

 private:
  std::vector<MixtureComponent> components_;
};

/// Options controlling EM fitting.
struct EmOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-6;       // relative log-likelihood improvement to stop
  double min_stddev = 1e-3;      // variance floor to avoid singular components
  std::uint64_t seed = 42;       // k-means++ initialisation seed
  std::size_t restarts = 3;      // independent inits; best likelihood wins
};

/// Result of an EM fit.
struct EmFit {
  GaussianMixture mixture;
  double log_likelihood = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Fits a k-component mixture to the sample with EM.
[[nodiscard]] EmFit fit_gmm(std::span<const double> xs, std::size_t k, const EmOptions& opts = {});

/// Fits mixtures for k in [min_k, max_k] and returns the one with the lowest
/// Bayesian information criterion. This is how Swiftest decides how many
/// "modes" a technology's bandwidth distribution has.
[[nodiscard]] EmFit fit_gmm_bic(std::span<const double> xs, std::size_t min_k, std::size_t max_k,
                                const EmOptions& opts = {});

/// BIC = k_params * ln(n) - 2 * logL, lower is better.
[[nodiscard]] double bic(const EmFit& fit, std::size_t sample_count);

}  // namespace swiftest::stats
