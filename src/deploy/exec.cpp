#include "deploy/exec.hpp"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/hostprof/hostprof.hpp"
#include "obs/hostprof/report.hpp"

namespace swiftest::deploy {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

WorkStealingDeque::WorkStealingDeque(std::size_t capacity)
    : buffer_(round_up_pow2(capacity)), mask_(buffer_.size() - 1) {}

bool WorkStealingDeque::push(std::size_t task) noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t >= static_cast<std::int64_t>(capacity())) return false;
  buffer_[static_cast<std::size_t>(b) & mask_].store(task,
                                                     std::memory_order_relaxed);
  // Publish the slot before the new bottom becomes visible to thieves.
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
  return true;
}

bool WorkStealingDeque::take(std::size_t& task) noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The store to bottom must be ordered before the read of top, or a thief
  // and the owner could both claim the same last element.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t <= b) {
    task = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it via the same CAS they use.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  // Empty: restore bottom.
  bottom_.store(b + 1, std::memory_order_relaxed);
  return false;
}

bool WorkStealingDeque::steal(std::size_t& task) noexcept {
  std::int64_t t = top_.load(std::memory_order_acquire);
  // Order the read of top before the read of bottom (mirror of take()).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;
  task = buffer_[static_cast<std::size_t>(t) & mask_].load(
      std::memory_order_relaxed);
  // Claim the slot; failure means another thief (or the owner's last-element
  // take) got there first — the caller retries its sweep.
  return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
}

std::size_t WorkStealingDeque::size() const noexcept {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

std::size_t resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void run_tasks(std::size_t task_count, std::size_t jobs,
               const std::function<void(std::size_t)>& fn,
               obs::hostprof::HostProfiler* prof) {
  using obs::hostprof::HostScope;
  using obs::hostprof::WorkerStats;

  if (task_count == 0) return;
  if (jobs <= 1 || task_count == 1) {
    // Inline path: the calling thread is the (only) worker, so its stats
    // land on timeline 0 alongside the pool region itself.
    obs::hostprof::Timeline* main_tl = prof != nullptr ? &prof->main() : nullptr;
    const HostScope pool_scope(main_tl, obs::hostprof::kPhasePool);
    WorkerStats stats;
    const std::uint64_t t_start = main_tl != nullptr ? main_tl->now_ns() : 0;
    for (std::size_t task = 0; task < task_count; ++task) {
      const std::uint64_t t0 = main_tl != nullptr ? main_tl->now_ns() : 0;
      {
        const HostScope task_scope(main_tl, obs::hostprof::kPhaseChunk, task);
        fn(task);
      }
      if (main_tl != nullptr) {
        stats.busy_ns += main_tl->now_ns() - t0;
        ++stats.chunks;
        ++stats.pulls;
      }
    }
    if (main_tl != nullptr) {
      stats.valid = true;
      stats.wall_ns = main_tl->now_ns() - t_start;
      stats.idle_ns = stats.wall_ns > stats.busy_ns ? stats.wall_ns - stats.busy_ns : 0;
      main_tl->set_worker_stats(stats);
    }
    return;
  }

  const std::size_t workers = jobs < task_count ? jobs : task_count;
  // Worker timelines must exist before the pool spawns: thread creation is
  // the happens-before edge that lets each worker record lock-free.
  if (prof != nullptr) prof->reserve_workers(workers);

  // Block distribution: worker i owns the contiguous tasks
  // [i * n / workers, (i+1) * n / workers), pushed in descending order so
  // its own take() pops them ascending. Thieves steal from the top, which
  // holds the block's *highest* remaining index — the owner and its thieves
  // approach each other, never overlap.
  // std::deque: elements hold atomics and must never relocate.
  std::deque<WorkStealingDeque> deques;
  for (std::size_t i = 0; i < workers; ++i) {
    const std::size_t lo = i * task_count / workers;
    const std::size_t hi = (i + 1) * task_count / workers;
    deques.emplace_back(hi > lo ? hi - lo : 1);
    for (std::size_t task = hi; task > lo; --task) {
      deques.back().push(task - 1);
    }
  }

  std::atomic<std::size_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](std::size_t index) {
    obs::hostprof::Timeline* tl = prof != nullptr ? &prof->worker(index) : nullptr;
    WorkerStats stats;
    const std::uint64_t t_start = tl != nullptr ? tl->now_ns() : 0;
    for (;;) {
      std::size_t task = 0;
      bool got = deques[index].take(task);
      bool stolen = false;
      if (!got) {
        // Sweep the other deques starting just past our own; a failed CAS
        // (lost race) just moves the sweep along.
        for (std::size_t off = 1; off < workers && !got; ++off) {
          got = deques[(index + off) % workers].steal(task);
        }
        stolen = got;
      }
      if (tl != nullptr) ++stats.pulls;  // one acquisition round, hit or miss
      if (!got) {
        if (done.load(std::memory_order_acquire) >= task_count) break;
        // Not drained yet: someone holds unfinished work we could not steal
        // this round (or a CAS race lost). Yield and sweep again.
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t t0 = tl != nullptr ? tl->now_ns() : 0;
      try {
        const HostScope task_scope(tl, obs::hostprof::kPhaseChunk, task);
        fn(task);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_release);
      if (tl != nullptr) {
        stats.busy_ns += tl->now_ns() - t0;
        ++stats.chunks;
        if (stolen) ++stats.steals;
      }
    }
    if (tl != nullptr) {
      stats.valid = true;
      stats.wall_ns = tl->now_ns() - t_start;
      stats.idle_ns = stats.wall_ns > stats.busy_ns ? stats.wall_ns - stats.busy_ns : 0;
      tl->set_worker_stats(stats);
    }
  };

  obs::hostprof::Timeline* main_tl = prof != nullptr ? &prof->main() : nullptr;
  const HostScope pool_scope(main_tl, obs::hostprof::kPhasePool);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker, i);
  {
    const HostScope join_scope(main_tl, obs::hostprof::kPhaseJoin);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace swiftest::deploy
