#include "deploy/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace swiftest::deploy {
namespace {

const std::array<IxpDomain, 8> kDomains = {{
    {"Beijing", 0.18},
    {"Shanghai", 0.18},
    {"Guangzhou", 0.17},
    {"Nanjing", 0.12},
    {"Wuhan", 0.11},
    {"Chengdu", 0.10},
    {"Xi'an", 0.08},
    {"Shenyang", 0.06},
}};

}  // namespace

std::span<const IxpDomain> ixp_domains() { return kDomains; }

Placement place_servers(std::size_t server_count) {
  Placement placement;
  placement.servers_per_domain.assign(kDomains.size(), 0);
  if (server_count == 0) return placement;

  // Guarantee presence in every domain first, when we can afford it.
  std::size_t remaining = server_count;
  if (server_count >= kDomains.size()) {
    for (auto& n : placement.servers_per_domain) n = 1;
    remaining -= kDomains.size();
  }

  // Largest-remainder apportionment of the rest by demand share.
  std::vector<double> exact(kDomains.size());
  std::vector<double> remainder(kDomains.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < kDomains.size(); ++i) {
    exact[i] = kDomains[i].demand_share * static_cast<double>(remaining);
    const auto whole = static_cast<std::size_t>(exact[i]);
    placement.servers_per_domain[i] += whole;
    remainder[i] = exact[i] - static_cast<double>(whole);
    assigned += whole;
  }
  std::vector<std::size_t> order(kDomains.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return remainder[a] > remainder[b]; });
  for (std::size_t i = 0; assigned < remaining; ++i, ++assigned) {
    ++placement.servers_per_domain[order[i % order.size()]];
  }
  return placement;
}

double placement_imbalance(const Placement& placement) {
  const std::size_t total = std::accumulate(placement.servers_per_domain.begin(),
                                            placement.servers_per_domain.end(),
                                            static_cast<std::size_t>(0));
  if (total == 0) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < kDomains.size(); ++i) {
    const double server_share = static_cast<double>(placement.servers_per_domain[i]) /
                                static_cast<double>(total);
    if (server_share <= 0.0) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, kDomains[i].demand_share / server_share);
  }
  return worst;
}

}  // namespace swiftest::deploy
