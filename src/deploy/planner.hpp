// Cost-effective server purchase planning (§5.2).
//
// Given the estimated peak probing workload, decide how many servers of each
// catalog configuration to purchase so that the total bandwidth exceeds the
// demand by a 5-10% margin at minimum cost:
//
//     minimize   sum_i n_i * price_i
//     subject to sum_i n_i * bandwidth_i >= demand * (1 + margin),
//                0 <= n_i <= available_i,  n_i integer.
//
// The integer program is solved with branch-and-bound: configurations are
// ordered by cost efficiency ($/Mbps) and the LP relaxation (greedy
// fractional fill) provides the bound, as §5.2 prescribes (O(k^2)-ish in
// practice via aggressive pruning).
#pragma once

#include <span>
#include <vector>

#include "deploy/catalog.hpp"

namespace swiftest::deploy {

struct PlannerOptions {
  /// Capacity margin over the estimated demand (5-10% per the ops team).
  double margin = 0.075;
  /// Safety valve on explored branch-and-bound nodes.
  std::size_t max_nodes = 2'000'000;
  /// Accept solutions within this relative gap of optimal. §5.2 explicitly
  /// targets a near-optimal solution with acceptable complexity; a small gap
  /// prunes the plateaus of near-identical $/Mbps configurations.
  double optimality_gap = 0.02;
};

struct PurchasePlan {
  bool feasible = false;
  /// counts[i] = units of catalog[i] to purchase.
  std::vector<int> counts;
  double total_cost_usd = 0.0;
  double total_bandwidth_mbps = 0.0;
  std::size_t total_servers = 0;
  std::size_t nodes_explored = 0;
};

/// Solves the purchase ILP for the given demand.
[[nodiscard]] PurchasePlan plan_purchase(std::span<const ServerConfig> catalog,
                                         double demand_mbps,
                                         const PlannerOptions& options = {});

/// Reference plan for the legacy flat deployment: enough `legacy` servers to
/// cover the demand at the legacy over-provisioning factor (BTS-APP allocates
/// capacity proportionally to workload share, ~25x the raw peak demand).
[[nodiscard]] PurchasePlan legacy_plan(const ServerConfig& legacy, double demand_mbps,
                                       double overprovision_factor = 25.0);

/// A per-IXP-domain purchase: the national demand split by the domains'
/// demand shares, each domain planned against the (shared, depleting)
/// catalog availability, largest demand first. This is the §5.2 deployment
/// as actually executed — servers are bought *in* each domain, near its
/// core IXP, not as one national pool.
struct RegionalPlan {
  bool feasible = false;
  std::vector<PurchasePlan> per_domain;  // aligned with ixp_domains()
  double total_cost_usd = 0.0;
  double total_bandwidth_mbps = 0.0;
  std::size_t total_servers = 0;
};

[[nodiscard]] RegionalPlan plan_regional(std::span<const ServerConfig> catalog,
                                         double national_demand_mbps,
                                         const PlannerOptions& options = {});

}  // namespace swiftest::deploy
