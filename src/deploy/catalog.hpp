// Server purchase catalog (§5.2).
//
// The paper selects from ~336 VM server configurations on OneProvider
// (bandwidth 100 Mbps - 10 Gbps, price $10.41 - $2609/month, limited
// availability per configuration). The real catalog is a moving commercial
// target, so we synthesize one with the same ranges and the same economics:
// price grows superlinearly with bandwidth (big-pipe premium), cheap
// configurations are scarcer, and providers differ by a noise factor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swiftest::deploy {

struct ServerConfig {
  std::string provider;
  double bandwidth_mbps = 0.0;
  double price_per_month_usd = 0.0;
  int available = 0;  // purchasable units of this configuration
};

/// Deterministically synthesizes a OneProvider-like catalog.
[[nodiscard]] std::vector<ServerConfig> synthetic_catalog(std::uint64_t seed = 2022,
                                                          std::size_t configs = 336);

/// The flat-rate configuration BTS-APP's legacy deployment uses: 1 Gbps
/// ISP-negotiated servers (for the §5.3 infrastructure-cost comparison).
[[nodiscard]] ServerConfig legacy_gbps_server();

}  // namespace swiftest::deploy
