// Fleet-load simulation for capacity planning (§5.2-§5.3).
//
// Replays a probing workload against a deployed server fleet: Poisson test
// arrivals following the diurnal intensity profile, each test probing at
// Swiftest's model-driven rate across ceil(rate/uplink) servers in the
// client's IXP domain, for ~1.2 s. Produces the per-(server, window)
// utilization distribution — the quantity Fig 26 reports and the margin
// check an operator runs before shrinking the fleet.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataset/record.hpp"
#include "obs/health/monitor.hpp"
#include "obs/hostprof/hostprof.hpp"
#include "obs/hub.hpp"
#include "obs/prof.hpp"
#include "obs/resource.hpp"
#include "obs/sampling.hpp"
#include "stats/descriptive.hpp"
#include "swiftest/model_registry.hpp"

namespace swiftest::deploy {

/// How the fleet load is evaluated once the workload is drawn.
enum class FleetBackend {
  /// Closed-form accounting: each test contributes rate/n_servers to its
  /// servers for its duration. Fast; ignores queueing and protocol effects.
  kAnalytic,
  /// Packet-level replay: every test is a real WireClient probing real
  /// SwiftestServers through its own isolated netsim::Testbed, keyed by the
  /// test's global draw index — per-window delivered-byte deltas sum exactly
  /// at merge, so artifacts are partition-free. Cross-test egress contention
  /// is not modeled (each test sees dedicated servers). Orders of magnitude
  /// slower than analytic; use small workloads.
  kPacket,
};

struct FleetSimConfig {
  std::size_t server_count = 20;
  double server_uplink_mbps = 100.0;
  double tests_per_day = 10'000.0;
  int days = 7;
  /// Utilization aggregation window.
  int window_seconds = 10;
  std::uint64_t seed = 99;
  FleetBackend backend = FleetBackend::kAnalytic;
  /// Tests per execution chunk (0 = the default, 256). The drawn workload
  /// decomposes into bounded chunks of *consecutive* draws executed by the
  /// work-stealing pool (deploy/exec.hpp); chunk outputs merge in canonical
  /// workload-index order. The partition-invariance contract: every
  /// deterministic artifact — result numbers, trace, spans, metrics, health —
  /// is a pure function of (config, seed), independent of this value and of
  /// `jobs`. Each test keys its own RNG stream (core::stream_seed of the
  /// test's global draw index), so chunk boundaries never shift a draw.
  std::size_t chunk = 0;
  /// Worker threads executing chunks (clamped to the chunk count); 1 runs
  /// every chunk inline on the calling thread, 0 means the hardware
  /// concurrency. Results and every artifact are independent of this value —
  /// it buys wall-clock time only.
  std::size_t jobs = 1;
  /// Optional observability hub, attached to the packet backend's scheduler
  /// for the run: per-test lifecycle traces, per-server egress-utilization
  /// samples, and fleet.* counters land here. Null disables instrumentation.
  obs::Hub* obs = nullptr;
  /// Optional health monitor: both backends stream the §5 operational
  /// signals into it — per-test duration, data usage, and deviation (keyed
  /// by tech/ISP/server dimensions) plus per-server busy-window egress
  /// utilization and the windowed test-arrival rate. The analytic backend
  /// has no estimator, so its deviation is the model-coverage proxy
  /// |min(rate, truth) - truth| / truth (0 whenever the settled probing
  /// rate covers the client). Null disables health aggregation.
  obs::health::HealthMonitor* health = nullptr;
  /// Optional wall-clock self-profiler: workload generation and replay are
  /// timed under fleet.* categories. Host-time only — never part of the
  /// deterministic result or health report. Each shard records into a
  /// private registry merged (ProfRegistry::merge_from) after the join, so
  /// the aggregate is thread-safe at any `jobs`.
  obs::ProfRegistry* prof = nullptr;
  /// Optional thread-aware host-time profiler (obs/hostprof/). When set, the
  /// run records per-thread phase timelines — workload.gen on the calling
  /// thread, exec.run + per-worker chunk.run via run_tasks, then
  /// replay.numeric (analytic) and merge.tracer / merge.metrics /
  /// merge.spans / merge.canonicalize / spill.io / samplelog.replay — plus
  /// per-worker busy/idle/steal accounting. Host time only: a non-null
  /// profiler never changes a single byte of the deterministic artifacts.
  obs::hostprof::HostProfiler* hostprof = nullptr;
  /// Deterministic whole-test observability sampling (DESIGN.md §12). When
  /// enabled (denominator > 1) and `obs` is attached, each test's trace
  /// events and spans are retained iff sampled(test_id) — test_id is the
  /// global workload draw index, so the sampled artifact is a pure function
  /// of (seed, workload) and byte-identical for every `jobs`, `chunk`
  /// combination (the merge canonicalizes event and span order). The salt
  /// is overridden with this config's seed. Disabled (1/1) keeps the
  /// retain-everything behavior.
  obs::SamplingPolicy sample;
  /// Global observability memory budget in MB; 0 = unlimited. The run plans
  /// a deterministic degradation schedule up front (obs::SampleSchedule):
  /// walking the workload in draw order, the sampling denominator doubles at
  /// the checkpoints where the modeled obs footprint would exceed the budget
  /// — recorded in obs.sample_degradations — instead of the run growing
  /// without bound. The plan depends only on (workload size, policy, budget,
  /// cost model): never on the partition, the thread schedule, or RSS.
  std::uint64_t obs_budget_mb = 0;
  /// Directory for rotating spill segments (must exist; empty disables
  /// spilling). Full trace rings and span stores flush whole segments here
  /// instead of dropping; the merge concatenates them in (chunk, segment)
  /// order into <dir>/trace.spill.jsonl and <dir>/spans.spill.jsonl.
  std::string obs_spill_dir;
  /// Optional resource self-telemetry: per-chunk occupancy/drop/spill
  /// counters and host wall/RSS measurements land here (obs/resource.hpp).
  obs::ResourceMonitor* resource = nullptr;
};

struct FleetSimResult {
  /// Utilization (%) per busy (server, window); sorted ascending.
  std::vector<double> busy_window_utilization;
  stats::Summary summary;        // over the busy windows
  double p99 = 0.0;
  double p999 = 0.0;
  /// Fraction of busy windows at or below 45% utilization (the paper's
  /// headline sufficiency number).
  double share_leq_45 = 0.0;
  /// Fraction of seconds where requested load exceeded fleet capacity.
  double overload_seconds_share = 0.0;
  std::uint64_t tests_simulated = 0;
  /// Always 0 since the partition-free runtime: every arrival runs in its
  /// own isolated testbed, so there is no client-slot pool to exhaust. Kept
  /// for artifact compatibility.
  std::uint64_t tests_dropped = 0;
  /// Spill accounting summed over every chunk's writers plus the merge
  /// target (all zero when --obs-spill-dir is off). Deterministic — segment
  /// rotation depends on store capacity and event volume, never on --jobs —
  /// so these feed the run manifest's spill summaries.
  std::uint64_t spill_trace_segments = 0;
  std::uint64_t spill_trace_bytes = 0;
  std::uint64_t spill_span_segments = 0;
  std::uint64_t spill_span_bytes = 0;
  /// False if any spill segment or concat failed to land intact.
  bool spill_ok = true;
};

/// The probing rate Swiftest settles on for a client of the given capacity:
/// the model's mode ladder walked up until the rate covers the capacity.
[[nodiscard]] double settled_probing_rate(const stats::GaussianMixture& model,
                                          double truth_mbps);

/// Runs the fleet simulation. `population` supplies the client mix (tech and
/// ground-truth bandwidth are drawn from it uniformly).
[[nodiscard]] FleetSimResult simulate_fleet(std::span<const dataset::TestRecord> population,
                                            const swift::ModelRegistry& registry,
                                            const FleetSimConfig& config = {});

}  // namespace swiftest::deploy
