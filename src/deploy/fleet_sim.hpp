// Fleet-load simulation for capacity planning (§5.2-§5.3).
//
// Replays a probing workload against a deployed server fleet: Poisson test
// arrivals following the diurnal intensity profile, each test probing at
// Swiftest's model-driven rate across ceil(rate/uplink) servers in the
// client's IXP domain, for ~1.2 s. Produces the per-(server, window)
// utilization distribution — the quantity Fig 26 reports and the margin
// check an operator runs before shrinking the fleet.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dataset/record.hpp"
#include "obs/health/monitor.hpp"
#include "obs/hostprof/hostprof.hpp"
#include "obs/hub.hpp"
#include "obs/prof.hpp"
#include "obs/resource.hpp"
#include "obs/sampling.hpp"
#include "stats/descriptive.hpp"
#include "swiftest/model_registry.hpp"

namespace swiftest::deploy {

/// How the fleet load is evaluated once the workload is drawn.
enum class FleetBackend {
  /// Closed-form accounting: each test contributes rate/n_servers to its
  /// servers for its duration. Fast; ignores queueing and protocol effects.
  kAnalytic,
  /// Packet-level replay: every test is a real WireClient probing real
  /// SwiftestServers through a netsim::Testbed, so concurrent tests contend
  /// in each server's one shared egress queue. Orders of magnitude slower;
  /// use small workloads.
  kPacket,
};

struct FleetSimConfig {
  std::size_t server_count = 20;
  double server_uplink_mbps = 100.0;
  double tests_per_day = 10'000.0;
  int days = 7;
  /// Utilization aggregation window.
  int window_seconds = 10;
  std::uint64_t seed = 99;
  FleetBackend backend = FleetBackend::kAnalytic;
  /// Number of independent shards the drawn workload partitions into, by
  /// stable hash of each arrival's first server (deploy/shard.hpp). Every
  /// shard is a self-contained simulation — own scheduler, testbed, RNG
  /// stream (core::stream_seed of this config's seed), obs hub, and health
  /// log — and the per-shard outputs merge in shard order. shards = 1 is
  /// the legacy unsharded run, bit-identical to pre-shard outputs. The
  /// analytic backend's result is exact for any shard count (per-window
  /// loads sum at merge); the packet backend loses only cross-shard egress
  /// contention (escalation traffic spilling onto another shard's servers).
  std::size_t shards = 1;
  /// Worker threads replaying shards (clamped to the shard count); 1 runs
  /// every shard inline on the calling thread. Results and every artifact
  /// are independent of this value — it buys wall-clock time only.
  std::size_t jobs = 1;
  /// Packet backend only: client slots available for overlapping tests,
  /// per shard. Arrivals beyond this concurrency are dropped
  /// (tests_dropped).
  std::size_t max_concurrent_tests = 64;
  /// Optional observability hub, attached to the packet backend's scheduler
  /// for the run: per-test lifecycle traces, per-server egress-utilization
  /// samples, and fleet.* counters land here. Null disables instrumentation.
  obs::Hub* obs = nullptr;
  /// Optional health monitor: both backends stream the §5 operational
  /// signals into it — per-test duration, data usage, and deviation (keyed
  /// by tech/ISP/server dimensions) plus per-server busy-window egress
  /// utilization and the windowed test-arrival rate. The analytic backend
  /// has no estimator, so its deviation is the model-coverage proxy
  /// |min(rate, truth) - truth| / truth (0 whenever the settled probing
  /// rate covers the client). Null disables health aggregation.
  obs::health::HealthMonitor* health = nullptr;
  /// Optional wall-clock self-profiler: workload generation and replay are
  /// timed under fleet.* categories. Host-time only — never part of the
  /// deterministic result or health report. Each shard records into a
  /// private registry merged (ProfRegistry::merge_from) after the join, so
  /// the aggregate is thread-safe at any `jobs`.
  obs::ProfRegistry* prof = nullptr;
  /// Optional thread-aware host-time profiler (obs/hostprof/). When set, the
  /// run records per-thread phase timelines — workload.gen / workload.partition
  /// on the calling thread, shard.replay + per-worker shard.run via
  /// run_shards, then merge.tracer / merge.metrics / merge.spans /
  /// merge.canonicalize / spill.io / samplelog.replay — plus per-worker
  /// busy/idle wait accounting. Host time only: a non-null profiler never
  /// changes a single byte of the deterministic artifacts.
  obs::hostprof::HostProfiler* hostprof = nullptr;
  /// Deterministic whole-test observability sampling (DESIGN.md §12). When
  /// enabled (denominator > 1) and `obs` is attached, each test's trace
  /// events and spans are retained iff sampled(test_id) — test_id is the
  /// global workload draw index, so the sampled artifact is a pure function
  /// of (seed, workload) and byte-identical for every `jobs` value and, with
  /// the analytic backend, every shard count (the merge canonicalizes event
  /// and span order). The salt is overridden with this config's seed.
  /// Disabled (1/1) keeps the legacy retain-everything behavior untouched.
  obs::SamplingPolicy sample;
  /// Total observability memory budget in MB, split evenly across shards;
  /// 0 = unlimited. When a shard's deterministic obs footprint (trace ring +
  /// span store + health log capacity) exceeds its slice, the shard's
  /// sampling denominator doubles — recorded in obs.sample_degradations —
  /// instead of the run growing without bound. Keyed on store footprint,
  /// never RSS, so degradation points are host-independent.
  std::uint64_t obs_budget_mb = 0;
  /// Directory for rotating spill segments (must exist; empty disables
  /// spilling). Full trace rings and span stores flush whole segments here
  /// instead of dropping; the merge concatenates them in (shard, segment)
  /// order into <dir>/trace.spill.jsonl and <dir>/spans.spill.jsonl.
  std::string obs_spill_dir;
  /// Optional resource self-telemetry: per-shard occupancy/drop/spill
  /// counters and host wall/RSS measurements land here (obs/resource.hpp).
  obs::ResourceMonitor* resource = nullptr;
};

struct FleetSimResult {
  /// Utilization (%) per busy (server, window); sorted ascending.
  std::vector<double> busy_window_utilization;
  stats::Summary summary;        // over the busy windows
  double p99 = 0.0;
  double p999 = 0.0;
  /// Fraction of busy windows at or below 45% utilization (the paper's
  /// headline sufficiency number).
  double share_leq_45 = 0.0;
  /// Fraction of seconds where requested load exceeded fleet capacity.
  double overload_seconds_share = 0.0;
  std::uint64_t tests_simulated = 0;
  /// Packet backend only: arrivals skipped because every client slot was
  /// already mid-test.
  std::uint64_t tests_dropped = 0;
  /// Spill accounting summed over every shard's writers plus the merge
  /// target (all zero when --obs-spill-dir is off). Deterministic — segment
  /// rotation depends on store capacity and event volume, never on --jobs —
  /// so these feed the run manifest's spill summaries.
  std::uint64_t spill_trace_segments = 0;
  std::uint64_t spill_trace_bytes = 0;
  std::uint64_t spill_span_segments = 0;
  std::uint64_t spill_span_bytes = 0;
  /// False if any spill segment or concat failed to land intact.
  bool spill_ok = true;
};

/// The probing rate Swiftest settles on for a client of the given capacity:
/// the model's mode ladder walked up until the rate covers the capacity.
[[nodiscard]] double settled_probing_rate(const stats::GaussianMixture& model,
                                          double truth_mbps);

/// Runs the fleet simulation. `population` supplies the client mix (tech and
/// ground-truth bandwidth are drawn from it uniformly).
[[nodiscard]] FleetSimResult simulate_fleet(std::span<const dataset::TestRecord> population,
                                            const swift::ModelRegistry& registry,
                                            const FleetSimConfig& config = {});

}  // namespace swiftest::deploy
