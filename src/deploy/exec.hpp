// The test-keyed, work-stealing execution plane for parallel fleet-days.
//
// A fleet-day no longer partitions into N static shards replayed whole:
// the drawn workload decomposes into bounded chunks of *consecutive* draws,
// and run_tasks executes those chunks on a bounded pool of workers that
// steal from each other when their own block drains. Because every chunk is
// a pure function of (config, seed, chunk index) and the caller merges
// chunk outputs in canonical workload-index order, the schedule — which
// worker ran which chunk, in what order, after how many steals — can never
// leak into an artifact. Imbalance is structurally bounded at chunk
// granularity: an idle worker takes work from the busiest deque instead of
// waiting behind a statically-hashed partition.
//
// The deque is a fixed-capacity Chase-Lev: the owner pushes and takes at
// the bottom without contention; thieves race a single CAS on top. Memory
// orderings follow Le, Pop, Cohen & Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP '13).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace swiftest::obs::hostprof {
class HostProfiler;
}

namespace swiftest::deploy {

/// Fixed-capacity single-owner work-stealing deque over task indices.
///
/// Contract: exactly one thread (the owner) calls push()/take(); any number
/// of other threads call steal(). Tasks come back exactly once: either to
/// the owner (LIFO, bottom) or to one thief (FIFO, top). The buffer never
/// grows — push() refuses when capacity is reached, which keeps the pool
/// bounded and allocation-free after construction.
class WorkStealingDeque {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit WorkStealingDeque(std::size_t capacity);

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. False when the deque is full.
  bool push(std::size_t task) noexcept;

  /// Owner only. Pops the most recently pushed remaining task. False when
  /// the deque is empty (including losing the last-element race to a thief).
  bool take(std::size_t& task) noexcept;

  /// Thief side. Claims the oldest task. False when empty or when another
  /// thread won the race for the same slot.
  bool steal(std::size_t& task) noexcept;

  /// Approximate (racy) occupancy; exact once all threads are quiescent.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::vector<std::atomic<std::size_t>> buffer_;
  std::size_t mask_;
  // top_ <= bottom_; both only ever increase except the owner's speculative
  // bottom decrement in take(). int64 so the transient bottom - 1 below a
  // concurrent top is well-defined.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// Worker threads to use for `jobs`: 0 means the hardware concurrency
/// (minimum 1); anything else is returned unchanged.
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs) noexcept;

/// Runs `fn(task)` exactly once for every task in [0, task_count) on a
/// bounded work-stealing pool of at most `jobs` threads.
///
/// Each worker owns a contiguous block of tasks (pushed so its own take()
/// order is ascending); when its deque drains it sweeps the other workers'
/// deques and steals their oldest task. jobs <= 1 (or a single task) runs
/// inline on the calling thread in ascending order. The set of executed
/// tasks is always exactly [0, task_count) — given task-local state, the
/// computed results are independent of scheduling, so callers that merge
/// outputs in task order produce artifacts independent of `jobs`. The first
/// exception thrown by any task is rethrown on the calling thread after
/// every worker has joined.
///
/// When `prof` is non-null the pool self-profiles (host time only):
///   * calling thread: one "exec.run" interval over the parallel region
///     with a nested "pool.join" interval over the joins;
///   * each worker timeline: one "chunk.run" interval per executed task
///     (arg = task index) plus WorkerStats — busy (inside fn), idle
///     (everything else; busy + idle == wall exactly), pulls (take/steal
///     acquisition rounds, including final misses), steals (tasks taken
///     from another worker's deque), and chunks (tasks executed). The
///     inline path records the same on the calling thread's timeline
///     (tid 0). Worker timelines are reserved before spawning.
void run_tasks(std::size_t task_count, std::size_t jobs,
               const std::function<void(std::size_t)>& fn,
               obs::hostprof::HostProfiler* prof = nullptr);

}  // namespace swiftest::deploy
