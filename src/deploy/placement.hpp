// Test-server placement near the core IXPs (§5.2).
//
// "In terms of Internet data exchange, China Mainland consists of eight
// domains, each containing a core IXP ... the servers should be evenly
// placed in these domains and as close to the core IXPs as possible."
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

namespace swiftest::deploy {

struct IxpDomain {
  std::string city;      // core IXP location
  double demand_share;   // fraction of the national probing demand
};

/// The eight Chinese IXP domains with demand shares roughly proportional to
/// the regional Internet population.
[[nodiscard]] std::span<const IxpDomain> ixp_domains();

struct Placement {
  std::vector<std::size_t> servers_per_domain;  // aligned with ixp_domains()
};

/// Distributes `server_count` servers over the domains proportionally to
/// demand share, guaranteeing at least one per domain when possible
/// (largest-remainder apportionment).
[[nodiscard]] Placement place_servers(std::size_t server_count);

/// Maximum demand-share-weighted imbalance of a placement: the largest
/// ratio between a domain's demand share and its server share. 1 = perfect.
[[nodiscard]] double placement_imbalance(const Placement& placement);

}  // namespace swiftest::deploy
