// Legacy shard-keyed partitioning helpers and the deprecated whole-shard
// pool entry point.
//
// The execution substrate moved to deploy/exec.hpp: fleet-days decompose
// into bounded chunks of consecutive workload draws executed by a
// work-stealing pool (run_tasks), and artifacts are a pure function of
// (config, seed) — independent of any partition count. What remains here:
//   * stable_hash64 / shard_of — the stable key hash, still used wherever a
//     deterministic assignment of keys to buckets is needed;
//   * run_shards — a compatibility wrapper that forwards to run_tasks so
//     existing callers keep working while they migrate. New code should call
//     deploy::run_tasks directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace swiftest::obs::hostprof {
class HostProfiler;
}

namespace swiftest::deploy {

/// Stable 64-bit mix (splitmix64 finalizer). Not cryptographic; chosen for
/// a fixed, platform-independent bit pattern so key-to-bucket assignment is
/// part of the reproducible simulation contract.
[[nodiscard]] std::uint64_t stable_hash64(std::uint64_t x) noexcept;

/// The bucket a key hashes to out of `shards` buckets.
[[nodiscard]] std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept;

/// Deprecated: forwards to run_tasks(shard_count, jobs, fn, prof). Same
/// exactly-once / first-exception / profiling contract (profile phases are
/// the chunk-plane names "exec.run" / "chunk.run" / "pool.join").
void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn,
                obs::hostprof::HostProfiler* prof = nullptr);

}  // namespace swiftest::deploy
