// Shard partitioning and the bounded worker pool for parallel fleet-days.
//
// A fleet-day shards by server locality: every arrival is assigned to
// shard_of(first_server, shards) with a stable 64-bit hash, so a given
// server's tests land in one shard regardless of arrival order, workload
// size, or thread count. Shards are fully independent simulations (own
// Scheduler, own Testbed, own RNG stream, own obs Hub and health log);
// run_shards executes them on at most `jobs` threads and the caller merges
// the per-shard outputs in shard order — which makes every artifact a pure
// function of (workload, shards), never of `jobs`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace swiftest::obs::hostprof {
class HostProfiler;
}

namespace swiftest::deploy {

/// Stable 64-bit mix (splitmix64 finalizer). Not cryptographic; chosen for
/// a fixed, platform-independent bit pattern so shard assignment is part of
/// the reproducible simulation contract.
[[nodiscard]] std::uint64_t stable_hash64(std::uint64_t x) noexcept;

/// The shard an arrival keyed by `key` (its first server index) belongs to.
[[nodiscard]] std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept;

/// Runs `fn(shard)` for every shard in [0, shard_count) on a pool of at most
/// `jobs` threads. jobs <= 1 runs inline on the calling thread in shard
/// order (the zero-thread path TSan baselines and debuggers want). Worker
/// threads pull the next unstarted shard from a shared counter, so the set
/// of executed shards — and, given shard-local state, the computed results —
/// is independent of scheduling. The first exception thrown by any shard is
/// rethrown on the calling thread after every worker has joined.
///
/// When `prof` is non-null, the pool self-profiles into it (host time only;
/// never touches the shards' deterministic outputs):
///   * calling thread: one "shard.replay" interval spanning the parallel
///     region and a nested "pool.join" interval over the joins;
///   * each worker timeline: one "shard.run" interval per executed shard
///     (arg = shard index) plus WorkerStats — busy (inside fn), idle
///     (everything else between thread start and exit, i.e. counter pulls
///     and the drained-counter miss; busy + idle == wall exactly), pulls,
///     and shard count. The inline path records the same on the calling
///     thread's timeline (tid 0). Worker timelines must already exist: the
///     pool calls reserve_workers before spawning, on the calling thread.
void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn,
                obs::hostprof::HostProfiler* prof = nullptr);

}  // namespace swiftest::deploy
