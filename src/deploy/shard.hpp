// Shard partitioning and the bounded worker pool for parallel fleet-days.
//
// A fleet-day shards by server locality: every arrival is assigned to
// shard_of(first_server, shards) with a stable 64-bit hash, so a given
// server's tests land in one shard regardless of arrival order, workload
// size, or thread count. Shards are fully independent simulations (own
// Scheduler, own Testbed, own RNG stream, own obs Hub and health log);
// run_shards executes them on at most `jobs` threads and the caller merges
// the per-shard outputs in shard order — which makes every artifact a pure
// function of (workload, shards), never of `jobs`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace swiftest::deploy {

/// Stable 64-bit mix (splitmix64 finalizer). Not cryptographic; chosen for
/// a fixed, platform-independent bit pattern so shard assignment is part of
/// the reproducible simulation contract.
[[nodiscard]] std::uint64_t stable_hash64(std::uint64_t x) noexcept;

/// The shard an arrival keyed by `key` (its first server index) belongs to.
[[nodiscard]] std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept;

/// Runs `fn(shard)` for every shard in [0, shard_count) on a pool of at most
/// `jobs` threads. jobs <= 1 runs inline on the calling thread in shard
/// order (the zero-thread path TSan baselines and debuggers want). Worker
/// threads pull the next unstarted shard from a shared counter, so the set
/// of executed shards — and, given shard-local state, the computed results —
/// is independent of scheduling. The first exception thrown by any shard is
/// rethrown on the calling thread after every worker has joined.
void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn);

}  // namespace swiftest::deploy
