#include "deploy/shard.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/hostprof/hostprof.hpp"
#include "obs/hostprof/report.hpp"

namespace swiftest::deploy {

std::uint64_t stable_hash64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(stable_hash64(key) % shards);
}

void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn,
                obs::hostprof::HostProfiler* prof) {
  using obs::hostprof::HostScope;
  using obs::hostprof::WorkerStats;

  if (shard_count == 0) return;
  if (jobs <= 1 || shard_count == 1) {
    // Inline path: the calling thread is the (only) worker, so its stats
    // land on timeline 0 alongside the pool region itself.
    obs::hostprof::Timeline* main_tl = prof != nullptr ? &prof->main() : nullptr;
    const HostScope pool_scope(main_tl, obs::hostprof::kPhasePool);
    WorkerStats stats;
    const std::uint64_t t_start = main_tl != nullptr ? main_tl->now_ns() : 0;
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      const std::uint64_t t0 = main_tl != nullptr ? main_tl->now_ns() : 0;
      {
        const HostScope shard_scope(main_tl, obs::hostprof::kPhaseShard, shard);
        fn(shard);
      }
      if (main_tl != nullptr) {
        stats.busy_ns += main_tl->now_ns() - t0;
        ++stats.shards;
        ++stats.pulls;
      }
    }
    if (main_tl != nullptr) {
      stats.valid = true;
      stats.wall_ns = main_tl->now_ns() - t_start;
      stats.idle_ns = stats.wall_ns > stats.busy_ns ? stats.wall_ns - stats.busy_ns : 0;
      main_tl->set_worker_stats(stats);
    }
    return;
  }

  const std::size_t workers = jobs < shard_count ? jobs : shard_count;
  // Worker timelines must exist before the pool spawns: thread creation is
  // the happens-before edge that lets each worker record lock-free.
  if (prof != nullptr) prof->reserve_workers(workers);

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&](std::size_t index) {
    obs::hostprof::Timeline* tl = prof != nullptr ? &prof->worker(index) : nullptr;
    WorkerStats stats;
    const std::uint64_t t_start = tl != nullptr ? tl->now_ns() : 0;
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (tl != nullptr) ++stats.pulls;  // includes the final miss
      if (shard >= shard_count) break;
      const std::uint64_t t0 = tl != nullptr ? tl->now_ns() : 0;
      try {
        const HostScope shard_scope(tl, obs::hostprof::kPhaseShard, shard);
        fn(shard);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (tl != nullptr) {
        stats.busy_ns += tl->now_ns() - t0;
        ++stats.shards;
      }
    }
    if (tl != nullptr) {
      stats.valid = true;
      stats.wall_ns = tl->now_ns() - t_start;
      stats.idle_ns = stats.wall_ns > stats.busy_ns ? stats.wall_ns - stats.busy_ns : 0;
      tl->set_worker_stats(stats);
    }
  };

  obs::hostprof::Timeline* main_tl = prof != nullptr ? &prof->main() : nullptr;
  const HostScope pool_scope(main_tl, obs::hostprof::kPhasePool);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker, i);
  {
    const HostScope join_scope(main_tl, obs::hostprof::kPhaseJoin);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace swiftest::deploy
