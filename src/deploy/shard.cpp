#include "deploy/shard.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace swiftest::deploy {

std::uint64_t stable_hash64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(stable_hash64(key) % shards);
}

void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn) {
  if (shard_count == 0) return;
  if (jobs <= 1 || shard_count == 1) {
    for (std::size_t shard = 0; shard < shard_count; ++shard) fn(shard);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shard_count) return;
      try {
        fn(shard);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t workers = jobs < shard_count ? jobs : shard_count;
  pool.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace swiftest::deploy
