#include "deploy/shard.hpp"

#include "deploy/exec.hpp"

namespace swiftest::deploy {

std::uint64_t stable_hash64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t shard_of(std::uint64_t key, std::size_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(stable_hash64(key) % shards);
}

void run_shards(std::size_t shard_count, std::size_t jobs,
                const std::function<void(std::size_t)>& fn,
                obs::hostprof::HostProfiler* prof) {
  run_tasks(shard_count, jobs, fn, prof);
}

}  // namespace swiftest::deploy
