#include "deploy/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "dataset/profiles.hpp"
#include "stats/descriptive.hpp"

namespace swiftest::deploy {

int poisson_quantile(double mean, double q) {
  if (mean <= 0.0) return 0;
  // Walk the PMF; fine for the small means involved here.
  double p = std::exp(-mean);
  double cdf = p;
  int k = 0;
  while (cdf < q && k < 100000) {
    ++k;
    p *= mean / k;
    cdf += p;
  }
  return k;
}

WorkloadEstimate estimate_workload(std::span<const dataset::TestRecord> records,
                                   const WorkloadParams& params) {
  WorkloadEstimate est;

  // Peak-hour arrival rate from the diurnal profile.
  const auto weights = dataset::hourly_test_weights();
  const double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double peak_weight = *std::max_element(weights.begin(), weights.end());
  const double peak_hour_share = peak_weight / total_weight;
  est.peak_arrivals_per_second = params.tests_per_day * peak_hour_share / 3600.0;

  // Concurrency: M/G/inf occupancy = lambda * service time; size for bursts.
  est.mean_concurrency = est.peak_arrivals_per_second * params.test_duration_s;
  est.sized_concurrency = std::max(
      1.0, static_cast<double>(poisson_quantile(est.mean_concurrency,
                                                params.concurrency_percentile)));

  // Per-test bandwidth: a high quantile of the observed access bandwidths.
  std::vector<double> bandwidths;
  bandwidths.reserve(records.size());
  for (const auto& r : records) bandwidths.push_back(r.bandwidth_mbps);
  est.per_test_mbps =
      bandwidths.empty() ? 0.0 : stats::quantile(bandwidths, params.bandwidth_quantile);

  est.demand_mbps = est.sized_concurrency * est.per_test_mbps;
  return est;
}

}  // namespace swiftest::deploy
