// Probing-workload estimation (§5.2).
//
// "The workload can be practically estimated by jointly considering recent
// user scale and their access bandwidths reflected in our data." The peak
// demand is the aggregate probing bandwidth of the tests that overlap at the
// busiest moment: test arrivals follow the diurnal intensity profile, each
// test occupies the wire for its duration at (roughly) the user's access
// bandwidth, and bursts are absorbed by sizing for a high percentile of the
// concurrency distribution.
#pragma once

#include <span>

#include "dataset/record.hpp"

namespace swiftest::deploy {

struct WorkloadParams {
  double tests_per_day = 10'000.0;
  /// Average seconds a test occupies the servers (Swiftest ~1.2 s; flooding
  /// BTSes ~10 s).
  double test_duration_s = 1.2;
  /// Size for this percentile of the Poisson concurrency distribution.
  double concurrency_percentile = 0.999;
  /// Per-test server-side bandwidth: this quantile of the campaign's
  /// bandwidth distribution (high, because a fast client saturates its
  /// assigned servers while the test lasts).
  double bandwidth_quantile = 0.95;
};

struct WorkloadEstimate {
  double peak_arrivals_per_second = 0.0;
  double mean_concurrency = 0.0;
  double sized_concurrency = 0.0;   // percentile of Poisson(mean_concurrency)
  double per_test_mbps = 0.0;
  double demand_mbps = 0.0;         // sized_concurrency * per_test_mbps
};

/// Estimates the peak probing demand from recent campaign records.
[[nodiscard]] WorkloadEstimate estimate_workload(
    std::span<const dataset::TestRecord> records, const WorkloadParams& params = {});

/// Quantile of a Poisson distribution (smallest k with CDF >= q).
[[nodiscard]] int poisson_quantile(double mean, double q);

}  // namespace swiftest::deploy
