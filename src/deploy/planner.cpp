#include "deploy/planner.hpp"

#include "deploy/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace swiftest::deploy {
namespace {

struct Item {
  std::size_t catalog_index;
  double bandwidth;
  double price;
  int available;
  double price_per_mbps;
};

/// Greedy fractional fill of the remaining demand with items[from..):
/// the LP-relaxation lower bound on remaining cost.
double fractional_bound(std::span<const Item> items, std::size_t from, double remaining) {
  double cost = 0.0;
  for (std::size_t i = from; i < items.size() && remaining > 0.0; ++i) {
    const double capacity = items[i].bandwidth * items[i].available;
    const double used = std::min(capacity, remaining);
    cost += used * items[i].price_per_mbps;
    remaining -= used;
  }
  if (remaining > 1e-9) return std::numeric_limits<double>::infinity();  // infeasible
  return cost;
}

struct Search {
  std::span<const Item> items;
  double target = 0.0;
  PlannerOptions options;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_counts;
  std::vector<int> current;
  std::size_t nodes = 0;

  void dfs(std::size_t index, double cost, double capacity) {
    if (++nodes > options.max_nodes) return;
    if (capacity >= target) {
      if (cost < best_cost) {
        best_cost = cost;
        best_counts = current;
      }
      return;
    }
    if (index >= items.size()) return;
    const double bound = fractional_bound(items, index, target - capacity);
    if (cost + bound >= best_cost * (1.0 - options.optimality_gap)) return;  // prune

    const Item& item = items[index];
    // Max useful count: just enough to cover the remaining demand.
    const int max_count = std::min<int>(
        item.available,
        static_cast<int>(std::ceil((target - capacity) / item.bandwidth)));
    // Try high counts first: the efficiency ordering makes large purchases of
    // efficient configs likely optimal, tightening the bound early.
    for (int n = max_count; n >= 0; --n) {
      current[index] = n;
      dfs(index + 1, cost + n * item.price, capacity + n * item.bandwidth);
      if (nodes > options.max_nodes) break;
    }
    current[index] = 0;
  }
};

}  // namespace

PurchasePlan plan_purchase(std::span<const ServerConfig> catalog, double demand_mbps,
                           const PlannerOptions& options) {
  PurchasePlan plan;
  plan.counts.assign(catalog.size(), 0);
  if (demand_mbps <= 0.0) {
    plan.feasible = true;
    return plan;
  }

  std::vector<Item> items;
  items.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& cfg = catalog[i];
    if (cfg.bandwidth_mbps <= 0.0 || cfg.available <= 0) continue;
    items.push_back(Item{i, cfg.bandwidth_mbps, cfg.price_per_month_usd, cfg.available,
                         cfg.price_per_month_usd / cfg.bandwidth_mbps});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.price_per_mbps < b.price_per_mbps; });

  Search search;
  search.items = items;
  search.target = demand_mbps * (1.0 + options.margin);
  search.options = options;
  search.current.assign(items.size(), 0);

  // Prime branch-and-bound with the greedy integer solution so the very
  // first bound already prunes most of the tree.
  {
    std::vector<int> greedy(items.size(), 0);
    double capacity = 0.0, cost = 0.0;
    for (std::size_t i = 0; i < items.size() && capacity < search.target; ++i) {
      const int n = std::min<int>(
          items[i].available,
          static_cast<int>(std::ceil((search.target - capacity) / items[i].bandwidth)));
      greedy[i] = n;
      capacity += n * items[i].bandwidth;
      cost += n * items[i].price;
    }
    if (capacity >= search.target) {
      search.best_cost = cost;
      search.best_counts = greedy;
    }
  }

  search.dfs(0, 0.0, 0.0);

  plan.nodes_explored = search.nodes;
  if (!std::isfinite(search.best_cost)) return plan;  // infeasible

  plan.feasible = true;
  plan.total_cost_usd = search.best_cost;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int n = search.best_counts[i];
    if (n == 0) continue;
    plan.counts[items[i].catalog_index] = n;
    plan.total_bandwidth_mbps += n * items[i].bandwidth;
    plan.total_servers += static_cast<std::size_t>(n);
  }
  return plan;
}

RegionalPlan plan_regional(std::span<const ServerConfig> catalog,
                           double national_demand_mbps, const PlannerOptions& options) {
  RegionalPlan regional;
  const auto domains = ixp_domains();
  regional.per_domain.resize(domains.size());

  // Plan the hungriest domains first: they need the scarce cheap capacity
  // most, and the shared availability depletes as we go.
  std::vector<std::size_t> order(domains.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return domains[a].demand_share > domains[b].demand_share;
  });

  std::vector<ServerConfig> remaining(catalog.begin(), catalog.end());
  regional.feasible = true;
  for (std::size_t d : order) {
    const double demand = national_demand_mbps * domains[d].demand_share;
    PurchasePlan plan = plan_purchase(remaining, demand, options);
    if (!plan.feasible) {
      regional.feasible = false;
      return regional;
    }
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      remaining[i].available -= plan.counts[i];
    }
    regional.total_cost_usd += plan.total_cost_usd;
    regional.total_bandwidth_mbps += plan.total_bandwidth_mbps;
    regional.total_servers += plan.total_servers;
    regional.per_domain[d] = std::move(plan);
  }
  return regional;
}

PurchasePlan legacy_plan(const ServerConfig& legacy, double demand_mbps,
                         double overprovision_factor) {
  PurchasePlan plan;
  plan.feasible = true;
  const double capacity_needed = demand_mbps * overprovision_factor;
  const int n = std::max(1, static_cast<int>(std::ceil(capacity_needed /
                                                       legacy.bandwidth_mbps)));
  plan.counts = {n};
  plan.total_servers = static_cast<std::size_t>(n);
  plan.total_bandwidth_mbps = n * legacy.bandwidth_mbps;
  plan.total_cost_usd = n * legacy.price_per_month_usd;
  return plan;
}

}  // namespace swiftest::deploy
