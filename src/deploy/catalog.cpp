#include "deploy/catalog.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/rng.hpp"

namespace swiftest::deploy {

std::vector<ServerConfig> synthetic_catalog(std::uint64_t seed, std::size_t configs) {
  core::Rng rng(seed);
  // Bandwidth tiers available on budget VM markets.
  constexpr std::array<double, 8> kTiers = {100, 200, 300, 500, 1000, 2000, 5000, 10000};
  constexpr std::array<const char*, 4> kProviders = {"oneprovider", "aliyun", "ec2",
                                                     "budgetvm"};
  std::vector<ServerConfig> catalog;
  catalog.reserve(configs);
  for (std::size_t i = 0; i < configs; ++i) {
    ServerConfig cfg;
    cfg.provider = kProviders[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kProviders.size()) - 1))];
    cfg.bandwidth_mbps = kTiers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kTiers.size()) - 1))];
    // Price: ~$10.41 at 100 Mbps growing superlinearly to ~$2609 at 10 Gbps,
    // with +-25% provider/location variance.
    const double base = 10.41 * std::pow(cfg.bandwidth_mbps / 100.0, 1.20);
    cfg.price_per_month_usd = base * rng.uniform(0.75, 1.25);
    cfg.price_per_month_usd = std::min(cfg.price_per_month_usd, 2609.0);
    // Cheap boxes are scarce; big ones more available.
    cfg.available = static_cast<int>(rng.uniform_int(1, 8));
    catalog.push_back(std::move(cfg));
  }
  return catalog;
}

ServerConfig legacy_gbps_server() {
  ServerConfig cfg;
  cfg.provider = "isp-negotiated";
  cfg.bandwidth_mbps = 1000.0;
  // ISP-negotiated, IXP-adjacent servers are premium-priced.
  cfg.price_per_month_usd = 10.41 * std::pow(10.0, 1.20) * 1.5;
  cfg.available = 352;
  return cfg;
}

}  // namespace swiftest::deploy
