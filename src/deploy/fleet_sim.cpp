#include "deploy/fleet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "dataset/profiles.hpp"
#include "deploy/placement.hpp"
#include "swiftest/client.hpp"

namespace swiftest::deploy {

double settled_probing_rate(const stats::GaussianMixture& model, double truth_mbps) {
  double rate = std::max(1.0, model.most_probable_mode());
  for (int i = 0; i < 16 && rate < truth_mbps; ++i) {
    const double next = model.most_probable_mode_above(rate);
    rate = next > rate ? next : rate * 1.25;
  }
  return rate;
}

FleetSimResult simulate_fleet(std::span<const dataset::TestRecord> population,
                              const swift::ModelRegistry& registry,
                              const FleetSimConfig& config) {
  FleetSimResult result;
  if (population.empty() || config.server_count == 0) return result;

  core::Rng rng(config.seed);
  const auto weights = dataset::hourly_test_weights();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  // Geographic assignment: contiguous server ranges per IXP domain.
  const auto placement = place_servers(config.server_count);
  const auto domains = ixp_domains();
  std::vector<double> domain_shares;
  std::vector<std::size_t> domain_first;
  std::size_t next_server = 0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    domain_shares.push_back(domains[d].demand_share);
    domain_first.push_back(next_server);
    next_server += placement.servers_per_domain[d];
  }

  const double fleet_capacity = config.server_uplink_mbps *
                                static_cast<double>(config.server_count);
  std::vector<std::vector<std::pair<int, double>>> active(config.server_count);
  std::vector<double> window_load(config.server_count, 0.0);
  std::uint64_t overload_seconds = 0, total_seconds = 0;

  for (int day = 0; day < config.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const double arrivals_per_second =
          config.tests_per_day * weights[static_cast<std::size_t>(hour)] / weight_sum /
          3600.0;
      int second_in_window = 0;
      for (int second = 0; second < 3600; ++second) {
        const auto new_tests = rng.poisson(arrivals_per_second);
        for (std::int64_t t = 0; t < new_tests; ++t) {
          ++result.tests_simulated;
          const auto& rec = population[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1))];
          const double rate =
              settled_probing_rate(registry.model(rec.tech), rec.bandwidth_mbps);
          const auto n_servers = std::min<std::size_t>(
              config.server_count,
              swift::SwiftestClient::servers_needed(rate, config.server_uplink_mbps));
          const int duration = rng.bernoulli(0.25) ? 2 : 1;  // ~1.2 s average
          const auto domain = rng.weighted_index(domain_shares);
          const std::size_t domain_size =
              std::max<std::size_t>(1, placement.servers_per_domain[domain]);
          const auto offset = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(domain_size) - 1));
          for (std::size_t s = 0; s < n_servers; ++s) {
            active[(domain_first[domain] + offset + s) % config.server_count]
                .emplace_back(duration, rate / static_cast<double>(n_servers));
          }
        }
        double second_load = 0.0;
        for (std::size_t s = 0; s < config.server_count; ++s) {
          double load = 0.0;
          for (auto& [remaining, mbps] : active[s]) {
            load += mbps;
            --remaining;
          }
          std::erase_if(active[s], [](const auto& e) { return e.first <= 0; });
          window_load[s] += load;
          second_load += load;
        }
        ++total_seconds;
        if (second_load > fleet_capacity) ++overload_seconds;
        if (++second_in_window == config.window_seconds) {
          for (std::size_t s = 0; s < config.server_count; ++s) {
            const double util = 100.0 * window_load[s] /
                                static_cast<double>(config.window_seconds) /
                                config.server_uplink_mbps;
            if (util > 0.0) result.busy_window_utilization.push_back(util);
            window_load[s] = 0.0;
          }
          second_in_window = 0;
        }
      }
    }
  }

  std::sort(result.busy_window_utilization.begin(), result.busy_window_utilization.end());
  result.summary = stats::summarize(result.busy_window_utilization);
  result.p99 = stats::quantile_sorted(result.busy_window_utilization, 0.99);
  result.p999 = stats::quantile_sorted(result.busy_window_utilization, 0.999);
  result.share_leq_45 =
      1.0 - stats::fraction_above(result.busy_window_utilization, 45.0);
  result.overload_seconds_share =
      total_seconds == 0 ? 0.0
                         : static_cast<double>(overload_seconds) /
                               static_cast<double>(total_seconds);
  return result;
}

}  // namespace swiftest::deploy
