#include "deploy/fleet_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "bts/tester.hpp"
#include "core/rng.hpp"
#include "dataset/profiles.hpp"
#include "dataset/taxonomy.hpp"
#include "obs/health/sample_log.hpp"
#include "obs/log.hpp"
#include "obs/spill.hpp"
#include "deploy/exec.hpp"
#include "deploy/placement.hpp"
#include "netsim/testbed.hpp"
#include "swiftest/client.hpp"
#include "swiftest/fleet.hpp"
#include "swiftest/wire_client.hpp"

namespace swiftest::deploy {

double settled_probing_rate(const stats::GaussianMixture& model, double truth_mbps) {
  double rate = std::max(1.0, model.most_probable_mode());
  for (int i = 0; i < 16 && rate < truth_mbps; ++i) {
    const double next = model.most_probable_mode_above(rate);
    rate = next > rate ? next : rate * 1.25;
  }
  return rate;
}

namespace {

/// Decorrelates packet testbed topology randomness from the workload draw
/// stream; each test's private testbed further splits it with
/// core::stream_seed of the test's global draw index.
constexpr std::uint64_t kTestbedSeedSalt = 0x9E3779B97F4A7C15ull;

/// Tests per execution chunk when FleetSimConfig::chunk is 0.
constexpr std::size_t kDefaultChunkSize = 256;

/// One test drawn from the workload generator: everything both backends need
/// to replay it.
struct Arrival {
  std::int64_t second = 0;  // arrival time, seconds since simulation start
  dataset::AccessTech tech = dataset::AccessTech::kWiFi5;
  dataset::Isp isp = dataset::Isp::kIsp1;
  double truth_mbps = 0.0;
  double rate_mbps = 0.0;       // the settled probing rate (analytic load)
  std::size_t n_servers = 1;    // servers the analytic model spreads it over
  int duration_s = 1;
  std::size_t first_server = 0;
  /// Global workload draw index — the observability sampling key, the packet
  /// testbed's RNG stream index, and the canonical merge key. Assigned in
  /// draw order before chunking, so it is identical for every chunk size and
  /// never consumes RNG state.
  std::uint64_t test_id = 0;
};

/// Draws the whole workload up front. The RNG consumption order is exactly
/// the historical analytic loop's — per second one poisson draw, then per
/// test: record, duration, domain, offset — so a given seed produces the
/// identical test sequence for both backends, for any chunk size, and for
/// pre-refactor runs. Chunking slices this list after the fact; it never
/// touches the draw order.
std::vector<Arrival> generate_workload(std::span<const dataset::TestRecord> population,
                                       const swift::ModelRegistry& registry,
                                       const FleetSimConfig& config) {
  obs::ProfScope prof(config.prof, "fleet.workload_gen");
  std::vector<Arrival> workload;
  core::Rng rng(config.seed);
  const auto weights = dataset::hourly_test_weights();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  // Geographic assignment: contiguous server ranges per IXP domain.
  const auto placement = place_servers(config.server_count);
  const auto domains = ixp_domains();
  std::vector<double> domain_shares;
  std::vector<std::size_t> domain_first;
  std::size_t next_server = 0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    domain_shares.push_back(domains[d].demand_share);
    domain_first.push_back(next_server);
    next_server += placement.servers_per_domain[d];
  }

  std::int64_t second_index = 0;
  for (int day = 0; day < config.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const double arrivals_per_second =
          config.tests_per_day * weights[static_cast<std::size_t>(hour)] / weight_sum /
          3600.0;
      for (int second = 0; second < 3600; ++second, ++second_index) {
        const auto new_tests = rng.poisson(arrivals_per_second);
        for (std::int64_t t = 0; t < new_tests; ++t) {
          const auto& rec = population[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1))];
          Arrival arrival;
          arrival.second = second_index;
          arrival.tech = rec.tech;
          arrival.isp = rec.isp;
          arrival.truth_mbps = rec.bandwidth_mbps;
          arrival.rate_mbps =
              settled_probing_rate(registry.model(rec.tech), rec.bandwidth_mbps);
          arrival.n_servers = std::min<std::size_t>(
              config.server_count,
              swift::SwiftestClient::servers_needed(arrival.rate_mbps,
                                                    config.server_uplink_mbps));
          arrival.duration_s = rng.bernoulli(0.25) ? 2 : 1;  // ~1.2 s average
          const auto domain = rng.weighted_index(domain_shares);
          const std::size_t domain_size =
              std::max<std::size_t>(1, placement.servers_per_domain[domain]);
          const auto offset = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(domain_size) - 1));
          arrival.first_server =
              (domain_first[domain] + offset) % config.server_count;
          arrival.test_id = static_cast<std::uint64_t>(workload.size());
          workload.push_back(arrival);
        }
      }
    }
  }
  return workload;
}

/// Dimension keys a test's health samples land under, beyond "all".
std::vector<std::string> arrival_dimensions(const Arrival& a) {
  return {dataset::dimension_key(a.tech), dataset::dimension_key(a.isp),
          "server:" + std::to_string(a.first_server)};
}

void finish_result(FleetSimResult& result, std::uint64_t overload_seconds,
                   std::uint64_t total_seconds) {
  std::sort(result.busy_window_utilization.begin(),
            result.busy_window_utilization.end());
  result.summary = stats::summarize(result.busy_window_utilization);
  result.p99 = stats::quantile_sorted(result.busy_window_utilization, 0.99);
  result.p999 = stats::quantile_sorted(result.busy_window_utilization, 0.999);
  result.share_leq_45 =
      1.0 - stats::fraction_above(result.busy_window_utilization, 45.0);
  result.overload_seconds_share =
      total_seconds == 0 ? 0.0
                         : static_cast<double>(overload_seconds) /
                               static_cast<double>(total_seconds);
}

/// Rotating spill sinks for one chunk's hub (obs/spill.hpp). The writers
/// must outlive the chunk run; the merge collects their segment paths in
/// (chunk, segment) order.
struct ChunkSpill {
  std::unique_ptr<obs::SpillWriter> trace;
  std::unique_ptr<obs::SpillWriter> spans;

  void attach(obs::Hub& hub, const std::string& dir, std::size_t chunk) {
    if (dir.empty()) return;
    trace = std::make_unique<obs::SpillWriter>(dir, "trace", chunk);
    spans = std::make_unique<obs::SpillWriter>(dir, "spans", chunk);
    hub.tracer.set_spill(
        [w = trace.get()](const obs::TraceEvent* events, std::size_t n) {
          w->write_trace_segment(events, n);
        });
    hub.spans.set_spill(
        [w = spans.get()](const obs::span::SpanRecord* records, std::size_t n) {
          w->write_span_segment(records, n);
        });
  }
};

/// Concatenates every chunk's spill segments — chunk order, then rotation
/// order within a chunk, so the result is independent of --jobs — into
/// <dir>/<stream>.spill.jsonl. No-op when nothing spilled.
void concat_spill(const std::vector<ChunkSpill>& spills, bool trace_stream,
                  const std::string& dir) {
  std::vector<std::string> paths;
  for (const ChunkSpill& s : spills) {
    const obs::SpillWriter* w = trace_stream ? s.trace.get() : s.spans.get();
    if (w == nullptr) continue;
    paths.insert(paths.end(), w->segment_paths().begin(),
                 w->segment_paths().end());
  }
  if (paths.empty()) return;
  const std::string out = dir + (trace_stream ? "/trace.spill.jsonl" : "/spans.spill.jsonl");
  std::string error;
  if (!obs::concat_segments(paths, out, &error)) {
    obs::logf(obs::LogLevel::kWarn, "fleet_sim: spill concat failed: %s",
              error.c_str());
  }
}

/// Sums every writer's rotation accounting into the result's spill fields,
/// so the run manifest can report spill volume without holding the writers.
void accumulate_spill(const std::vector<ChunkSpill>& spills,
                      FleetSimResult& result) {
  for (const ChunkSpill& s : spills) {
    if (s.trace != nullptr) {
      result.spill_trace_segments += s.trace->segments();
      result.spill_trace_bytes += s.trace->bytes_written();
      result.spill_ok = result.spill_ok && s.trace->ok();
    }
    if (s.spans != nullptr) {
      result.spill_span_segments += s.spans->segments();
      result.spill_span_bytes += s.spans->bytes_written();
      result.spill_ok = result.spill_ok && s.spans->ok();
    }
  }
}

/// The footprint model SampleSchedule::plan degrades against: store
/// capacities and per-test record sizes, never RSS, so the degradation
/// schedule is host-independent (and, being precomputed over the global
/// draw order, partition-independent).
obs::SampleSchedule::CostModel sample_cost_model(const FleetSimConfig& config) {
  obs::SampleSchedule::CostModel model;
  if (config.obs != nullptr) {
    model.base_bytes = static_cast<std::uint64_t>(config.obs->tracer.capacity()) *
                       sizeof(obs::TraceEvent);
    if (config.backend == FleetBackend::kPacket) {
      // A packet test leaves O(hundreds) of protocol events and O(dozens)
      // of spans; the constants only shape the degradation cadence.
      model.sampled_test_bytes = 256 * sizeof(obs::TraceEvent) +
                                 24 * sizeof(obs::span::SpanRecord);
    } else {
      // Analytic: two fleet.test trace events plus one span per sampled test.
      model.sampled_test_bytes =
          2 * sizeof(obs::TraceEvent) + sizeof(obs::span::SpanRecord);
    }
  }
  if (config.health != nullptr) model.per_test_bytes = 160;
  return model;
}

/// A fresh hub shaped like the parent but with a bounded trace ring, so a
/// run of many small chunks cannot multiply the parent's ring size by the
/// chunk count. Analytic chunks emit at most two events per test, so
/// 4 * chunk_size + slack never wraps (no drop-order dependence).
std::unique_ptr<obs::Hub> make_chunk_hub(const obs::Hub& like,
                                         std::size_t trace_capacity) {
  auto hub = std::make_unique<obs::Hub>(
      std::min(like.tracer.capacity(), trace_capacity), like.spans.capacity());
  hub->tracer.set_category_mask(like.tracer.category_mask());
  return hub;
}

// ---------------------------------------------------------------------------
// Analytic backend
// ---------------------------------------------------------------------------

/// One analytic chunk's output: health samples and sampled observability for
/// its consecutive slice of draws. The numeric load accounting is NOT here —
/// floating-point sums are not associative, so per-chunk partials would tie
/// the result bits to the partition; compute_analytic_load runs once, over
/// the whole workload, at merge.
struct AnalyticChunk {
  std::uint64_t tests = 0;
  obs::health::SampleLog health;
  bool want_health = false;
  /// Sampled observability emission (fleet.test events + spans); null unless
  /// sampling or a budget is active — legacy analytic runs emit nothing.
  std::unique_ptr<obs::Hub> hub;
  ChunkSpill spill;
  obs::ShardTelemetry telemetry;
  /// Private self-profile registry: workers record here without locks and
  /// the caller folds them into config.prof after the join.
  obs::ProfRegistry prof;
};

void run_analytic_chunk(std::span<const Arrival> arrivals,
                        const FleetSimConfig& config,
                        const obs::SampleSchedule* schedule, AnalyticChunk& out) {
  for (const Arrival& a : arrivals) {
    ++out.tests;
    if (config.resource != nullptr) config.resource->add_tests(1);
    if (out.hub != nullptr &&
        (schedule == nullptr || schedule->sampled(a.test_id))) {
      const core::SimTime ts = a.second * core::seconds(1);
      const core::SimTime te = ts + a.duration_s * core::seconds(1);
      out.hub->metrics.counter("fleet.tests_sampled").inc();
      if (out.hub->tracer.wants(obs::Category::kFleet)) {
        out.hub->tracer.record(ts, obs::Category::kFleet,
                               obs::EventKind::kInstant, "fleet.test_start",
                               a.test_id, a.rate_mbps);
        out.hub->tracer.record(te, obs::Category::kFleet,
                               obs::EventKind::kInstant, "fleet.test_done",
                               a.test_id, a.rate_mbps);
      }
      // trace_id 0 means "no trace", so the sampling key shifts by one.
      const obs::span::SpanId span = out.hub->spans.begin(
          ts, obs::Category::kFleet, "fleet.test", obs::span::kNoSpan,
          a.test_id + 1);
      out.hub->spans.attr_f64(span, "truth_mbps", a.truth_mbps);
      out.hub->spans.attr_f64(span, "rate_mbps", a.rate_mbps);
      out.hub->spans.end(span, te);
    }
    if (out.want_health) {
      out.health.note_arrival(static_cast<double>(a.second));
      obs::health::TestSample sample;
      sample.duration_s = static_cast<double>(a.duration_s);
      // Data usage at the settled probing rate for the test's duration.
      sample.data_mb = a.rate_mbps * static_cast<double>(a.duration_s) / 8.0;
      // No estimator in the closed form: deviation is the model-coverage
      // proxy — zero whenever the settled rate covers the client's truth.
      sample.deviation =
          bts::deviation(std::min(a.rate_mbps, a.truth_mbps), a.truth_mbps);
      const auto dims = arrival_dimensions(a);
      sample.dimensions = dims;
      out.health.record_test(sample);
    }
  }
}

/// The closed-form load accounting, over the full workload in draw order.
/// One serial pass — the bit-exact historical accumulation order, so the
/// result is a pure function of (config, seed) with no partition anywhere
/// in sight. Cheaper in total work than the per-shard scans it replaces:
/// those walked the whole period once per shard.
struct AnalyticLoad {
  std::vector<double> window_load;  // [window * server_count + server]
  std::vector<double> second_load;  // requested fleet load per second
};

AnalyticLoad compute_analytic_load(std::span<const Arrival> arrivals,
                                   const FleetSimConfig& config) {
  AnalyticLoad out;
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const std::int64_t windows_total =
      config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
  out.window_load.assign(
      static_cast<std::size_t>(windows_total) * config.server_count, 0.0);
  out.second_load.assign(static_cast<std::size_t>(total_seconds), 0.0);

  std::vector<std::vector<std::pair<int, double>>> active(config.server_count);
  std::size_t active_entries = 0;
  std::size_t next_arrival = 0;
  for (std::int64_t second = 0; second < total_seconds; ++second) {
    if (active_entries == 0) {
      // Idle: nothing contributes load until the next arrival, and zero
      // seconds are already materialized, so jump straight there.
      if (next_arrival >= arrivals.size()) break;
      if (arrivals[next_arrival].second > second) {
        second = arrivals[next_arrival].second;
      }
      if (second >= total_seconds) break;
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].second == second) {
      const Arrival& a = arrivals[next_arrival++];
      for (std::size_t s = 0; s < a.n_servers; ++s) {
        active[(a.first_server + s) % config.server_count].emplace_back(
            a.duration_s, a.rate_mbps / static_cast<double>(a.n_servers));
        ++active_entries;
      }
    }
    const std::int64_t w =
        config.window_seconds > 0 ? second / config.window_seconds : windows_total;
    double second_total = 0.0;
    for (std::size_t s = 0; s < config.server_count; ++s) {
      double load = 0.0;
      for (auto& [remaining, mbps] : active[s]) {
        load += mbps;
        --remaining;
      }
      const std::size_t before = active[s].size();
      std::erase_if(active[s], [](const auto& e) { return e.first <= 0; });
      active_entries -= before - active[s].size();
      if (load > 0.0 && w < windows_total) {
        out.window_load[static_cast<std::size_t>(w) * config.server_count + s] +=
            load;
      }
      second_total += load;
    }
    out.second_load[static_cast<std::size_t>(second)] = second_total;
  }
  return out;
}

FleetSimResult merge_analytic(std::vector<AnalyticChunk>& chunks,
                              const AnalyticLoad& load,
                              const FleetSimConfig& config) {
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;
  FleetSimResult result;
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const std::int64_t windows_total =
      config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
  const double fleet_capacity =
      config.server_uplink_mbps * static_cast<double>(config.server_count);

  for (const AnalyticChunk& chunk : chunks) result.tests_simulated += chunk.tests;

  std::uint64_t overload_seconds = 0;
  for (double second : load.second_load) {
    if (second > fleet_capacity) ++overload_seconds;
  }

  if (config.obs != nullptr && !chunks.empty() && chunks[0].hub != nullptr) {
    // The merge target can itself rotate: its segments take the index one
    // past the last chunk, so concat order stays (chunk, segment).
    ChunkSpill merge_spill;
    if (!config.obs_spill_dir.empty()) {
      merge_spill.attach(*config.obs, config.obs_spill_dir, chunks.size());
    }
    // Component-wise merge in chunk order — identical bytes to the fused
    // Hub::merge_from loop, but each component gets its own host-time phase.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.tracer");
      for (const AnalyticChunk& chunk : chunks) {
        config.obs->tracer.merge_from(chunk.hub->tracer);
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.metrics");
      for (const AnalyticChunk& chunk : chunks) {
        config.obs->metrics.merge_from(chunk.hub->metrics.snapshot());
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.spans");
      for (const AnalyticChunk& chunk : chunks) {
        config.obs->spans.merge_from(chunk.hub->spans);
      }
    }
    // Chunk concatenation order depends on the partition; the canonical
    // content order does not. After this, the sampled artifact renders
    // byte-identically for every chunk size (DESIGN.md §12, §15).
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.canonicalize");
      config.obs->tracer.sort_canonical();
      config.obs->spans.sort_canonical();
    }
    const obs::hostprof::HostScope scope(host_tl, "spill.io");
    std::vector<ChunkSpill> spills;
    for (AnalyticChunk& chunk : chunks) spills.push_back(std::move(chunk.spill));
    spills.push_back(std::move(merge_spill));
    concat_spill(spills, /*trace_stream=*/true, config.obs_spill_dir);
    concat_spill(spills, /*trace_stream=*/false, config.obs_spill_dir);
    accumulate_spill(spills, result);
  }

  if (config.health != nullptr) {
    const obs::hostprof::HostScope scope(host_tl, "samplelog.replay");
    std::vector<const obs::health::SampleLog*> logs;
    logs.reserve(chunks.size());
    for (const AnalyticChunk& chunk : chunks) logs.push_back(&chunk.health);
    obs::health::SampleLog::merge_arrivals(logs, *config.health);
    // Chunks hold consecutive draws, so replay in chunk order IS the global
    // draw order — bit-identical health to a single serial pass.
    for (const AnalyticChunk& chunk : chunks) {
      chunk.health.replay_samples(*config.health);
    }
  }

  // Busy windows in the historical emission order: window-major, then server.
  for (std::int64_t w = 0; w < windows_total; ++w) {
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const double window_sum =
          load.window_load[static_cast<std::size_t>(w) * config.server_count + s];
      const double util = 100.0 * window_sum /
                          static_cast<double>(config.window_seconds) /
                          config.server_uplink_mbps;
      if (util > 0.0) {
        result.busy_window_utilization.push_back(util);
        // Busy windows only, matching Fig 26's utilization distribution.
        if (config.health != nullptr) {
          config.health->record_egress_utilization(s, util);
        }
      }
    }
  }

  finish_result(result, overload_seconds,
                static_cast<std::uint64_t>(total_seconds));
  return result;
}

// ---------------------------------------------------------------------------
// Packet backend
// ---------------------------------------------------------------------------

/// One packet chunk's output. Every test in the chunk runs in its own
/// isolated testbed (seeded by the test's global draw index), so a chunk is
/// a pure function of its slice of draws: per-(window, server) delivered
/// bytes and per-server protocol counters are *integers* that sum exactly —
/// in any order — at merge. That is what makes the packet artifacts
/// partition-free, at the documented cost of not modeling cross-test egress
/// contention.
struct PacketChunk {
  struct WindowDelta {
    std::uint32_t window = 0;
    std::uint32_t server = 0;
    std::int64_t bytes = 0;
  };
  std::vector<WindowDelta> deltas;
  std::uint64_t tests_simulated = 0;
  std::vector<std::uint64_t> server_accepted;    // [server_count]
  std::vector<std::int64_t> server_probe_bytes;  // [server_count]
  std::unique_ptr<obs::Hub> hub;  // mirror of config.obs; null when disabled
  // One metrics snapshot per test, in draw order. Metrics must merge as a
  // flat left fold over *tests* — not over chunks — because gauge adds and
  // histogram `sum` accumulation are floating-point: folding per-chunk
  // partials would make the result depend on where the chunk boundaries
  // fall. Per-test snapshots folded in global draw order associate
  // identically for every chunk size and job count.
  std::vector<obs::MetricsSnapshot> metric_snaps;
  obs::health::SampleLog health;
  bool want_health = false;
  ChunkSpill spill;
  obs::ShardTelemetry telemetry;
  obs::ProfRegistry prof;  // private; merged into config.prof after the join
};

void run_packet_test(const Arrival& a, const swift::ModelRegistry& registry,
                     const FleetSimConfig& config, bool sampled_test,
                     bool count_sampled, bool sampled_mode,
                     std::int64_t windows_total, PacketChunk& out) {
  netsim::TestbedConfig tb_cfg;
  tb_cfg.fleet.server_count = config.server_count;
  tb_cfg.fleet.server_uplink = core::Bandwidth::mbps(config.server_uplink_mbps);
  netsim::ClientAccessConfig slot_cfg;
  slot_cfg.access_rate = core::Bandwidth::mbps(1000);  // re-set to truth below
  tb_cfg.clients = {slot_cfg};
  netsim::Testbed testbed(
      tb_cfg, core::stream_seed(config.seed ^ kTestbedSeedSalt, a.test_id));
  netsim::Scheduler& sched = testbed.scheduler();
  // Each test observes through its own hub: trace events and spans fold into
  // the chunk hub right after the test (so chunk-level spill still engages),
  // while the metrics snapshot is kept per test for the draw-order fold at
  // merge (see PacketChunk::metric_snaps).
  std::unique_ptr<obs::Hub> test_hub;
  if (out.hub != nullptr) {
    test_hub = obs::Hub::mirror_of(*out.hub);
    if (sampled_mode) test_hub->spans.set_sampled_mode(true);
    // Span ids are store-local and partition-dependent; the begin/end tracer
    // mirror would leak them into the merged trace, so spans mirror into
    // metrics only.
    test_hub->spans.set_sinks(nullptr, &test_hub->metrics);
  }
  sched.set_obs(test_hub.get());

  swift::ServerConfig server_cfg;
  server_cfg.uplink = core::Bandwidth::mbps(config.server_uplink_mbps);

  obs::health::HealthSink* health = out.want_health ? &out.health : nullptr;
  netsim::ClientContext& ctx = testbed.client(0);
  // Whole-test sampling: keyed on the global draw index, so the decision is
  // identical for every chunk size and jobs value. Every span this test's
  // client (or the wire protocol under it) would begin becomes a no-op when
  // unsampled.
  ctx.spans().set_suppressed(!sampled_test);

  const std::int64_t W = config.window_seconds;
  const core::SimTime start = a.second * core::seconds(1);

  std::unique_ptr<swift::ServerFleet> fleet;
  std::unique_ptr<swift::WireClient> wire;
  obs::span::SpanId test_span = obs::span::kNoSpan;
  bool done = false;

  auto trace_fleet = [&sched](const char* name, std::uint64_t id, double value) {
    if (auto* tr = sched.tracer(obs::Category::kFleet)) {
      tr->record(sched.now(), obs::Category::kFleet, obs::EventKind::kInstant,
                 name, id, value);
    }
  };

  // Utilization windows tick on the GLOBAL W-second grid — window w's
  // delivered-byte delta is read at time (w+1)*W regardless of when the
  // test started — so per-window deltas from different tests line up and
  // sum exactly at merge. The chain self-terminates once the test is done
  // and a tick sees no new bytes.
  std::vector<std::int64_t> last_delivered(config.server_count, 0);
  std::int64_t window_index = W > 0 ? a.second / W : 0;
  std::function<void()> tick = [&] {
    bool moved = false;
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const netsim::LinkBase* egress = testbed.server_egress(s);
      const std::int64_t delivered =
          egress != nullptr ? egress->stats().bytes_delivered : 0;
      const std::int64_t delta = delivered - last_delivered[s];
      last_delivered[s] = delivered;
      if (delta != 0) {
        out.deltas.push_back(
            PacketChunk::WindowDelta{static_cast<std::uint32_t>(window_index),
                                     static_cast<std::uint32_t>(s), delta});
        moved = true;
      }
    }
    ++window_index;
    if (window_index < windows_total && (moved || !done)) {
      sched.schedule_in(W * core::seconds(1), tick);
    }
  };

  sched.schedule_at(start, [&] {
    if (health != nullptr) health->note_arrival(static_cast<double>(a.second));
    if (config.resource != nullptr) config.resource->add_tests(1);
    // Servers are born at test start, not at t = 0: their idle-GC timers
    // only tick while the test lives, which keeps this private scheduler's
    // event count proportional to the test, not to the simulated week.
    fleet = std::make_unique<swift::ServerFleet>(testbed, server_cfg);
    if (auto* hub = sched.obs()) {
      hub->metrics.counter("fleet.tests_started").inc();
      if (count_sampled) hub->metrics.counter("fleet.tests_sampled").inc();
    }
    if (sampled_test) trace_fleet("fleet.test_start", a.test_id, a.rate_mbps);
    ctx.access_link().set_rate(core::Bandwidth::mbps(a.truth_mbps));

    swift::SwiftestConfig wc_cfg;
    wc_cfg.tech = a.tech;
    wc_cfg.server_uplink_mbps = config.server_uplink_mbps;
    wire = std::make_unique<swift::WireClient>(wc_cfg, registry, server_cfg);
    wire->attach_fleet(*fleet);
    wire->set_forced_server(a.first_server);
    auto& sctx = ctx.spans();
    test_span = sctx.begin(obs::Category::kFleet, "fleet.test");
    if (auto* spans = sctx.store()) {
      spans->attr_f64(test_span, "truth_mbps", a.truth_mbps);
      spans->attr_u64(test_span, "server", a.first_server);
    }
    sctx.push(test_span);
    wire->start(ctx, [&](const bts::BtsResult& r) {
      done = true;
      if (sampled_test) trace_fleet("fleet.test_done", a.test_id, r.bandwidth_mbps);
      if (auto* hub = sched.obs()) {
        hub->spans.attr_f64(test_span, "estimate_mbps", r.bandwidth_mbps);
        hub->spans.end(test_span, sched.now());
      }
      test_span = obs::span::kNoSpan;
      if (health != nullptr) {
        obs::health::TestSample sample;
        sample.duration_s = core::to_seconds(r.total_duration());
        sample.data_mb = r.data_used.megabytes();
        sample.deviation = bts::deviation(r.bandwidth_mbps, a.truth_mbps);
        const auto dims = arrival_dimensions(a);
        sample.dimensions = dims;
        health->record_test(sample);
      }
    });
    sctx.pop(test_span);
    if (W > 0 && window_index < windows_total) {
      sched.schedule_at((window_index + 1) * W * core::seconds(1), tick);
    }
    ++out.tests_simulated;
  });

  // Bound covers the protocol's hard stop (start + max_duration), delivery
  // drain, and one trailing window tick; the tick chain and the servers'
  // GC timers cannot outlive it.
  sched.run_until(start + core::seconds(30) + W * core::seconds(1));

  if (fleet != nullptr) {
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const swift::ServerStats& stats = fleet->server(s).stats();
      out.server_accepted[s] += stats.requests_accepted;
      out.server_probe_bytes[s] += stats.probe_bytes_sent;
    }
  }

  if (test_hub != nullptr) {
    // Fold this test's trace/spans into the chunk accumulator now (replayed
    // through record(), so the chunk's spill sink still sees overflow) and
    // bank the metrics snapshot for the merge-time draw-order fold.
    out.hub->tracer.merge_from(test_hub->tracer);
    out.hub->spans.merge_from(test_hub->spans);
    out.metric_snaps.push_back(test_hub->metrics.snapshot());
  }

  // Scheduler-side self-telemetry, summed across the chunk's testbeds.
  const netsim::Scheduler::AllocStats alloc = sched.alloc_stats();
  const netsim::CalendarEventQueue::Stats cal = sched.calendar_stats();
  obs::ShardTelemetry& t = out.telemetry;
  t.events_executed += sched.events_executed();
  t.slab_slots += alloc.slab_slots;
  t.callback_heap_fallbacks += alloc.callback_heap_fallbacks;
  t.payload_nodes += alloc.payload_nodes;
  t.payload_heap_spills += alloc.payload_heap_spills;
  t.transit_nodes += alloc.transit_nodes;
  t.transit_peak_live = std::max(t.transit_peak_live, alloc.transit_peak_live);
  t.calendar_sweeps += cal.sweeps;
  t.calendar_rebases += cal.rebases;
  t.calendar_far_pushes += cal.far_pushes;
}

void run_packet_chunk(std::span<const Arrival> arrivals,
                      const swift::ModelRegistry& registry,
                      const FleetSimConfig& config,
                      const obs::SampleSchedule* schedule,
                      std::int64_t windows_total, PacketChunk& out) {
  out.server_accepted.assign(config.server_count, 0);
  out.server_probe_bytes.assign(config.server_count, 0);
  out.metric_snaps.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    const bool sampled = schedule == nullptr || schedule->sampled(a.test_id);
    const bool count_sampled =
        schedule != nullptr && sampled && schedule->denominator_at(a.test_id) > 1;
    run_packet_test(a, registry, config, sampled, count_sampled,
                    /*sampled_mode=*/schedule != nullptr, windows_total, out);
  }
}

FleetSimResult merge_packet(std::vector<PacketChunk>& chunks,
                            const FleetSimConfig& config) {
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;
  FleetSimResult result;
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const std::int64_t windows_total =
      config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
  const double window_capacity_mbit =
      config.server_uplink_mbps * static_cast<double>(config.window_seconds);

  // Integer sums, commutative and associative: the merged matrices are
  // exactly partition-independent, no canonical summation order needed.
  std::vector<std::int64_t> delivered(
      static_cast<std::size_t>(windows_total) * config.server_count, 0);
  std::vector<std::uint64_t> accepted(config.server_count, 0);
  std::vector<std::int64_t> probe_bytes(config.server_count, 0);
  for (const PacketChunk& chunk : chunks) {
    result.tests_simulated += chunk.tests_simulated;
    for (const PacketChunk::WindowDelta& d : chunk.deltas) {
      delivered[static_cast<std::size_t>(d.window) * config.server_count +
                d.server] += d.bytes;
    }
    for (std::size_t s = 0; s < chunk.server_accepted.size(); ++s) {
      accepted[s] += chunk.server_accepted[s];
      probe_bytes[s] += chunk.server_probe_bytes[s];
    }
  }

  const auto util_of = [&](std::int64_t w, std::size_t s) {
    const std::int64_t bytes =
        delivered[static_cast<std::size_t>(w) * config.server_count + s];
    return 100.0 * static_cast<double>(bytes) * 8.0 / 1e6 / window_capacity_mbit;
  };

  if (config.obs != nullptr) {
    ChunkSpill merge_spill;
    if (!config.obs_spill_dir.empty()) {
      merge_spill.attach(*config.obs, config.obs_spill_dir, chunks.size());
    }
    // Component-wise merge in chunk order (same bytes as the fused hub
    // merge), one host-time phase per component.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.tracer");
      for (const PacketChunk& chunk : chunks) {
        if (chunk.hub != nullptr) config.obs->tracer.merge_from(chunk.hub->tracer);
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.metrics");
      // A flat left fold over per-test snapshots in global draw order: the
      // FP additions (gauge adds, histogram sums) associate identically for
      // every chunk size and job count, so the merged registry is a pure
      // function of (config, seed).
      for (const PacketChunk& chunk : chunks) {
        for (const obs::MetricsSnapshot& snap : chunk.metric_snaps) {
          config.obs->metrics.merge_from(snap);
        }
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.spans");
      for (const PacketChunk& chunk : chunks) {
        if (chunk.hub != nullptr) config.obs->spans.merge_from(chunk.hub->spans);
      }
    }
    // Fleet-level series are a function of the merged byte matrix, so they
    // are emitted here — once, partition-free — rather than inside any
    // chunk: one egress_util sample per (window, server) on the global
    // grid, and the busy-window histogram.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.windows");
      const bool wants_fleet = config.obs->tracer.wants(obs::Category::kFleet);
      for (std::int64_t w = 0; w < windows_total; ++w) {
        const core::SimTime ts = (w + 1) * config.window_seconds * core::seconds(1);
        for (std::size_t s = 0; s < config.server_count; ++s) {
          const double util = util_of(w, s);
          if (util > 0.0) {
            config.obs->metrics
                .histogram("fleet.window_utilization",
                           {5.0, 15.0, 30.0, 45.0, 60.0, 80.0, 95.0})
                .observe(util);
          }
          if (wants_fleet) {
            config.obs->tracer.record(ts, obs::Category::kFleet,
                                      obs::EventKind::kCounter,
                                      "fleet.egress_util", s, util);
          }
        }
      }
    }
    // Always canonicalize: chunk concatenation order (and chunk-local span
    // ids) depend on the partition; the content order does not.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.canonicalize");
      config.obs->tracer.sort_canonical();
      config.obs->spans.sort_canonical();
    }
    const obs::hostprof::HostScope scope(host_tl, "spill.io");
    std::vector<ChunkSpill> spills;
    for (PacketChunk& chunk : chunks) spills.push_back(std::move(chunk.spill));
    spills.push_back(std::move(merge_spill));
    concat_spill(spills, /*trace_stream=*/true, config.obs_spill_dir);
    concat_spill(spills, /*trace_stream=*/false, config.obs_spill_dir);
    accumulate_spill(spills, result);
  }

  if (config.health != nullptr) {
    const obs::hostprof::HostScope scope(host_tl, "samplelog.replay");
    std::vector<const obs::health::SampleLog*> logs;
    logs.reserve(chunks.size());
    for (const PacketChunk& chunk : chunks) logs.push_back(&chunk.health);
    obs::health::SampleLog::merge_arrivals(logs, *config.health);
    for (const PacketChunk& chunk : chunks) {
      chunk.health.replay_samples(*config.health);
    }
  }

  // Busy windows, overload, and per-server egress health from the merged
  // matrix, window-major — the historical emission order.
  std::uint64_t overloaded_windows = 0;
  for (std::int64_t w = 0; w < windows_total; ++w) {
    double window_total = 0.0;
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const double util = util_of(w, s);
      window_total += util;
      if (util > 0.0) {
        result.busy_window_utilization.push_back(util);
        if (config.health != nullptr) {
          config.health->record_egress_utilization(s, util);
        }
      }
    }
    // Fleet egress effectively saturated (the overload proxy).
    if (window_total >= 98.0 * static_cast<double>(config.server_count)) {
      ++overloaded_windows;
    }
  }

  // Protocol-level per-server load balance (sessions, probe egress), from
  // the integer sums.
  if (config.health != nullptr) {
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const std::string dims[] = {"server:" + std::to_string(s)};
      config.health->record("server_sessions",
                            static_cast<double>(accepted[s]), dims);
      config.health->record("server_probe_mb",
                            static_cast<double>(probe_bytes[s]) / 1e6, dims);
    }
  }

  finish_result(
      result,
      overloaded_windows * static_cast<std::uint64_t>(config.window_seconds),
      static_cast<std::uint64_t>(total_seconds));
  return result;
}

}  // namespace

FleetSimResult simulate_fleet(std::span<const dataset::TestRecord> population,
                              const swift::ModelRegistry& registry,
                              const FleetSimConfig& config) {
  FleetSimResult result;
  if (population.empty() || config.server_count == 0) return result;
  const std::size_t jobs = resolve_jobs(config.jobs);
  const std::size_t chunk_size =
      config.chunk == 0 ? kDefaultChunkSize : config.chunk;
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;

  const auto run_start = std::chrono::steady_clock::now();
  const auto finish_resource = [&] {
    if (config.resource == nullptr) return;
    config.resource->finish_run(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - run_start)
                                    .count());
  };

  // The sampling base: salted with the run seed; the budget is GLOBAL (the
  // degradation schedule is planned over the whole draw order, so no
  // per-partition split exists to leak the partition into the sampled set).
  obs::SamplingPolicy base_policy = config.sample;
  base_policy.set_salt(config.seed);
  if (config.obs_budget_mb > 0) {
    base_policy.set_budget_bytes(config.obs_budget_mb * 1024ull * 1024ull);
  }
  const bool sampling_active =
      base_policy.enabled() || config.obs_budget_mb > 0;

  std::vector<Arrival> workload;
  {
    const obs::hostprof::HostScope scope(host_tl, "workload.gen");
    workload = generate_workload(population, registry, config);
  }

  const std::size_t chunk_count =
      workload.empty() ? 0 : (workload.size() + chunk_size - 1) / chunk_size;
  if (config.hostprof != nullptr) config.hostprof->set_run_shape(chunk_count, jobs);
  if (config.resource != nullptr) config.resource->begin_run(chunk_count);

  std::optional<obs::SampleSchedule> schedule;
  if (sampling_active) {
    schedule = obs::SampleSchedule::plan(workload.size(), base_policy,
                                         sample_cost_model(config));
  }
  const obs::SampleSchedule* sched_ptr =
      schedule.has_value() ? &*schedule : nullptr;

  const auto chunk_arrivals = [&](std::size_t c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(workload.size(), lo + chunk_size);
    return std::span<const Arrival>(workload.data() + lo, hi - lo);
  };
  const auto chunk_degradations = [&](std::size_t c) -> std::uint64_t {
    if (sched_ptr == nullptr) return 0;
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(workload.size(), lo + chunk_size);
    return sched_ptr->degradations_in(lo, hi);
  };

  if (config.backend == FleetBackend::kPacket && config.server_uplink_mbps > 0.0) {
    const std::int64_t total_seconds =
        static_cast<std::int64_t>(config.days) * 24 * 3600;
    const std::int64_t windows_total =
        config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
    std::vector<PacketChunk> outputs(chunk_count);
    for (std::size_t c = 0; c < chunk_count; ++c) {
      PacketChunk& out = outputs[c];
      out.want_health = config.health != nullptr;
      if (config.obs != nullptr) {
        // The chunk hub is an accumulator: tests record into their own
        // per-test hubs (run_packet_test) and fold in after each test, so
        // the chunk's spill sink sees overflow while metrics stay banked
        // per test. No live recording happens here, so no sink or sampled
        // mode setup is needed — merge_from never re-emits through sinks.
        out.hub = obs::Hub::mirror_of(*config.obs);
        out.spill.attach(*out.hub, config.obs_spill_dir, c);
      }
    }
    {
      obs::ProfScope prof(config.prof, "fleet.replay_packet");
      run_tasks(
          chunk_count, jobs,
          [&](std::size_t c) {
            const auto t0 = std::chrono::steady_clock::now();
            {
              // Per-chunk registry: lock-free on the worker, merged after join.
              obs::ProfScope chunk_prof(
                  config.prof != nullptr ? &outputs[c].prof : nullptr,
                  "fleet.chunk_replay");
              run_packet_chunk(chunk_arrivals(c), registry, config, sched_ptr,
                               windows_total, outputs[c]);
            }
            PacketChunk& out = outputs[c];
            obs::ShardTelemetry& t = out.telemetry;
            t.shard = c;
            t.wall_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
            t.tests = out.tests_simulated;
            t.health_dropped = out.health.dropped();
            t.sample_degradations = chunk_degradations(c);
            if (out.hub != nullptr) {
              t.trace_dropped = out.hub->tracer.dropped();
              t.trace_spilled = out.hub->tracer.spilled();
              t.span_dropped = out.hub->spans.dropped();
              t.span_spilled = out.hub->spans.spilled();
            }
            if (config.resource != nullptr) {
              config.resource->record_shard(t);
              config.resource->note_shard_done();
              config.resource->sample_usage();
            }
          },
          config.hostprof);
      if (config.prof != nullptr) {
        for (const PacketChunk& out : outputs) config.prof->merge_from(out.prof);
      }
    }
    obs::ProfScope prof(config.prof, "fleet.merge");
    const obs::hostprof::HostScope merge_scope(host_tl, "merge");
    result = merge_packet(outputs, config);
    finish_resource();
    return result;
  }

  std::vector<AnalyticChunk> outputs(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    AnalyticChunk& out = outputs[c];
    out.want_health = config.health != nullptr;
    // The analytic backend emits observability only under sampling (or a
    // budget): its legacy contract is "no obs emission", and the sampled
    // fleet.test events/spans are the artifact the byte-identity gate pins.
    if (config.obs != nullptr && sampling_active) {
      out.hub = make_chunk_hub(*config.obs, 4 * chunk_size + 1024);
      out.spill.attach(*out.hub, config.obs_spill_dir, c);
      // Analytic fleet.test spans root their trace trees explicitly, so
      // sampled mode stays off; only the id-leaking tracer mirror goes.
      out.hub->spans.set_sinks(nullptr, &out.hub->metrics);
    }
  }
  AnalyticLoad load;
  {
    obs::ProfScope prof(config.prof, "fleet.replay_analytic");
    run_tasks(
        chunk_count, jobs,
        [&](std::size_t c) {
          const auto t0 = std::chrono::steady_clock::now();
          {
            obs::ProfScope chunk_prof(
                config.prof != nullptr ? &outputs[c].prof : nullptr,
                "fleet.chunk_replay");
            run_analytic_chunk(chunk_arrivals(c), config, sched_ptr, outputs[c]);
          }
          AnalyticChunk& out = outputs[c];
          obs::ShardTelemetry& t = out.telemetry;
          t.shard = c;
          t.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
          t.tests = out.tests;
          t.health_dropped = out.health.dropped();
          t.sample_degradations = chunk_degradations(c);
          if (out.hub != nullptr) {
            t.trace_dropped = out.hub->tracer.dropped();
            t.trace_spilled = out.hub->tracer.spilled();
            t.span_dropped = out.hub->spans.dropped();
            t.span_spilled = out.hub->spans.spilled();
          }
          if (config.resource != nullptr) {
            config.resource->record_shard(t);
            config.resource->note_shard_done();
            config.resource->sample_usage();
          }
        },
        config.hostprof);
    if (config.prof != nullptr) {
      for (const AnalyticChunk& out : outputs) config.prof->merge_from(out.prof);
    }
    // The closed-form load accounting runs once, serially, over the whole
    // workload: floating-point sums are order-sensitive, so this is the one
    // place the numbers are allowed to accumulate — the historical order,
    // bit-identical for every (chunk, jobs).
    const obs::hostprof::HostScope scope(host_tl, "replay.numeric");
    load = compute_analytic_load(workload, config);
  }
  obs::ProfScope prof(config.prof, "fleet.merge");
  const obs::hostprof::HostScope merge_scope(host_tl, "merge");
  result = merge_analytic(outputs, load, config);
  finish_resource();
  return result;
}

}  // namespace swiftest::deploy
