#include "deploy/fleet_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>

#include "bts/tester.hpp"
#include "core/rng.hpp"
#include "dataset/profiles.hpp"
#include "dataset/taxonomy.hpp"
#include "obs/health/sample_log.hpp"
#include "obs/log.hpp"
#include "obs/spill.hpp"
#include "deploy/placement.hpp"
#include "deploy/shard.hpp"
#include "netsim/testbed.hpp"
#include "swiftest/client.hpp"
#include "swiftest/fleet.hpp"
#include "swiftest/wire_client.hpp"

namespace swiftest::deploy {

double settled_probing_rate(const stats::GaussianMixture& model, double truth_mbps) {
  double rate = std::max(1.0, model.most_probable_mode());
  for (int i = 0; i < 16 && rate < truth_mbps; ++i) {
    const double next = model.most_probable_mode_above(rate);
    rate = next > rate ? next : rate * 1.25;
  }
  return rate;
}

namespace {

/// Decorrelates the packet testbed's topology randomness from the workload
/// draw stream; per-shard testbeds further split it with core::stream_seed.
constexpr std::uint64_t kTestbedSeedSalt = 0x9E3779B97F4A7C15ull;

/// One test drawn from the workload generator: everything both backends need
/// to replay it.
struct Arrival {
  std::int64_t second = 0;  // arrival time, seconds since simulation start
  dataset::AccessTech tech = dataset::AccessTech::kWiFi5;
  dataset::Isp isp = dataset::Isp::kIsp1;
  double truth_mbps = 0.0;
  double rate_mbps = 0.0;       // the settled probing rate (analytic load)
  std::size_t n_servers = 1;    // servers the analytic model spreads it over
  int duration_s = 1;
  std::size_t first_server = 0;
  /// Global workload draw index — the observability sampling key. Assigned
  /// in draw order before partitioning, so it is identical for every shard
  /// count and never consumes RNG state.
  std::uint64_t test_id = 0;
};

/// Draws the whole workload up front. The RNG consumption order is exactly
/// the historical analytic loop's — per second one poisson draw, then per
/// test: record, duration, domain, offset — so a given seed produces the
/// identical test sequence for both backends, for any shard count, and for
/// pre-refactor runs. Sharding partitions this list after the fact; it never
/// touches the draw order.
std::vector<Arrival> generate_workload(std::span<const dataset::TestRecord> population,
                                       const swift::ModelRegistry& registry,
                                       const FleetSimConfig& config) {
  obs::ProfScope prof(config.prof, "fleet.workload_gen");
  std::vector<Arrival> workload;
  core::Rng rng(config.seed);
  const auto weights = dataset::hourly_test_weights();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  // Geographic assignment: contiguous server ranges per IXP domain.
  const auto placement = place_servers(config.server_count);
  const auto domains = ixp_domains();
  std::vector<double> domain_shares;
  std::vector<std::size_t> domain_first;
  std::size_t next_server = 0;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    domain_shares.push_back(domains[d].demand_share);
    domain_first.push_back(next_server);
    next_server += placement.servers_per_domain[d];
  }

  std::int64_t second_index = 0;
  for (int day = 0; day < config.days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const double arrivals_per_second =
          config.tests_per_day * weights[static_cast<std::size_t>(hour)] / weight_sum /
          3600.0;
      for (int second = 0; second < 3600; ++second, ++second_index) {
        const auto new_tests = rng.poisson(arrivals_per_second);
        for (std::int64_t t = 0; t < new_tests; ++t) {
          const auto& rec = population[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1))];
          Arrival arrival;
          arrival.second = second_index;
          arrival.tech = rec.tech;
          arrival.isp = rec.isp;
          arrival.truth_mbps = rec.bandwidth_mbps;
          arrival.rate_mbps =
              settled_probing_rate(registry.model(rec.tech), rec.bandwidth_mbps);
          arrival.n_servers = std::min<std::size_t>(
              config.server_count,
              swift::SwiftestClient::servers_needed(arrival.rate_mbps,
                                                    config.server_uplink_mbps));
          arrival.duration_s = rng.bernoulli(0.25) ? 2 : 1;  // ~1.2 s average
          const auto domain = rng.weighted_index(domain_shares);
          const std::size_t domain_size =
              std::max<std::size_t>(1, placement.servers_per_domain[domain]);
          const auto offset = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(domain_size) - 1));
          arrival.first_server =
              (domain_first[domain] + offset) % config.server_count;
          arrival.test_id = static_cast<std::uint64_t>(workload.size());
          workload.push_back(arrival);
        }
      }
    }
  }
  return workload;
}

/// Dimension keys a test's health samples land under, beyond "all".
std::vector<std::string> arrival_dimensions(const Arrival& a) {
  return {dataset::dimension_key(a.tech), dataset::dimension_key(a.isp),
          "server:" + std::to_string(a.first_server)};
}

void finish_result(FleetSimResult& result, std::uint64_t overload_seconds,
                   std::uint64_t total_seconds) {
  std::sort(result.busy_window_utilization.begin(),
            result.busy_window_utilization.end());
  result.summary = stats::summarize(result.busy_window_utilization);
  result.p99 = stats::quantile_sorted(result.busy_window_utilization, 0.99);
  result.p999 = stats::quantile_sorted(result.busy_window_utilization, 0.999);
  result.share_leq_45 =
      1.0 - stats::fraction_above(result.busy_window_utilization, 45.0);
  result.overload_seconds_share =
      total_seconds == 0 ? 0.0
                         : static_cast<double>(overload_seconds) /
                               static_cast<double>(total_seconds);
}

/// Rotating spill sinks for one shard's hub (obs/spill.hpp). The writers
/// must outlive the shard run; the merge collects their segment paths in
/// (shard, segment) order.
struct ShardSpill {
  std::unique_ptr<obs::SpillWriter> trace;
  std::unique_ptr<obs::SpillWriter> spans;

  void attach(obs::Hub& hub, const std::string& dir, std::size_t shard) {
    if (dir.empty()) return;
    trace = std::make_unique<obs::SpillWriter>(dir, "trace", shard);
    spans = std::make_unique<obs::SpillWriter>(dir, "spans", shard);
    hub.tracer.set_spill(
        [w = trace.get()](const obs::TraceEvent* events, std::size_t n) {
          w->write_trace_segment(events, n);
        });
    hub.spans.set_spill(
        [w = spans.get()](const obs::span::SpanRecord* records, std::size_t n) {
          w->write_span_segment(records, n);
        });
  }
};

/// The deterministic observability footprint a budget degrades against:
/// store capacities, never RSS, so degradation points are host-independent.
std::uint64_t obs_footprint_bytes(const obs::Hub* hub,
                                  const obs::health::SampleLog& health) {
  std::uint64_t bytes = health.approx_bytes();
  if (hub != nullptr) {
    bytes += hub->tracer.approx_bytes() + hub->spans.approx_bytes();
  }
  return bytes;
}

/// Concatenates every shard's spill segments — shard order, then rotation
/// order within a shard, so the result is independent of --jobs — into
/// <dir>/<stream>.spill.jsonl. No-op when nothing spilled.
void concat_spill(const std::vector<ShardSpill>& spills, bool trace_stream,
                  const std::string& dir) {
  std::vector<std::string> paths;
  for (const ShardSpill& s : spills) {
    const obs::SpillWriter* w = trace_stream ? s.trace.get() : s.spans.get();
    if (w == nullptr) continue;
    paths.insert(paths.end(), w->segment_paths().begin(),
                 w->segment_paths().end());
  }
  if (paths.empty()) return;
  const std::string out = dir + (trace_stream ? "/trace.spill.jsonl" : "/spans.spill.jsonl");
  std::string error;
  if (!obs::concat_segments(paths, out, &error)) {
    obs::logf(obs::LogLevel::kWarn, "fleet_sim: spill concat failed: %s",
              error.c_str());
  }
}

/// Sums every writer's rotation accounting into the result's spill fields,
/// so the run manifest can report spill volume without holding the writers.
void accumulate_spill(const std::vector<ShardSpill>& spills,
                      FleetSimResult& result) {
  for (const ShardSpill& s : spills) {
    if (s.trace != nullptr) {
      result.spill_trace_segments += s.trace->segments();
      result.spill_trace_bytes += s.trace->bytes_written();
      result.spill_ok = result.spill_ok && s.trace->ok();
    }
    if (s.spans != nullptr) {
      result.spill_span_segments += s.spans->segments();
      result.spill_span_bytes += s.spans->bytes_written();
      result.spill_ok = result.spill_ok && s.spans->ok();
    }
  }
}

/// One analytic shard's raw output. The closed form is linear in the
/// arrivals, so per-(window, server) load matrices and per-second fleet
/// loads sum exactly at merge: a sharded analytic run computes the same
/// numbers as the unsharded one, to the bit, for any shard count.
struct AnalyticShard {
  std::vector<double> window_load;  // [window * server_count + server]
  std::vector<double> second_load;  // requested fleet load per second
  std::uint64_t tests = 0;
  obs::health::SampleLog health;
  bool want_health = false;
  /// Sampled observability emission (fleet.test events + spans); null unless
  /// sampling or a budget is active — legacy analytic runs emit nothing.
  std::unique_ptr<obs::Hub> hub;
  ShardSpill spill;
  /// Per-shard working copy: the denominator may degrade under this shard's
  /// budget slice, independently of other shards.
  obs::SamplingPolicy policy;
  obs::ShardTelemetry telemetry;
  /// Private self-profile registry: workers record here without locks and
  /// the caller folds them into config.prof after the join.
  obs::ProfRegistry prof;
};

void run_analytic_shard(std::span<const Arrival> arrivals,
                        const FleetSimConfig& config, AnalyticShard& out) {
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const std::int64_t windows_total =
      config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
  out.window_load.assign(
      static_cast<std::size_t>(windows_total) * config.server_count, 0.0);
  out.second_load.assign(static_cast<std::size_t>(total_seconds), 0.0);

  std::vector<std::vector<std::pair<int, double>>> active(config.server_count);
  std::size_t active_entries = 0;
  std::size_t next_arrival = 0;
  for (std::int64_t second = 0; second < total_seconds; ++second) {
    if (active_entries == 0) {
      // Idle: nothing contributes load until the next arrival, and zero
      // seconds are already materialized, so jump straight there.
      if (next_arrival >= arrivals.size()) break;
      if (arrivals[next_arrival].second > second) {
        second = arrivals[next_arrival].second;
      }
      if (second >= total_seconds) break;
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].second == second) {
      const Arrival& a = arrivals[next_arrival++];
      ++out.tests;
      if (config.resource != nullptr) config.resource->add_tests(1);
      for (std::size_t s = 0; s < a.n_servers; ++s) {
        active[(a.first_server + s) % config.server_count].emplace_back(
            a.duration_s, a.rate_mbps / static_cast<double>(a.n_servers));
        ++active_entries;
      }
      if (out.hub != nullptr) {
        // Budget check every 4k arrivals: deterministic cadence, so the
        // degradation points depend only on (workload, shards, budget).
        if ((out.tests & 0xfffu) == 0) {
          out.policy.note_footprint(obs_footprint_bytes(out.hub.get(), out.health));
        }
        if (out.policy.sampled(a.test_id)) {
          const core::SimTime ts = a.second * core::seconds(1);
          const core::SimTime te = ts + a.duration_s * core::seconds(1);
          out.hub->metrics.counter("fleet.tests_sampled").inc();
          if (out.hub->tracer.wants(obs::Category::kFleet)) {
            out.hub->tracer.record(ts, obs::Category::kFleet,
                                   obs::EventKind::kInstant, "fleet.test_start",
                                   a.test_id, a.rate_mbps);
            out.hub->tracer.record(te, obs::Category::kFleet,
                                   obs::EventKind::kInstant, "fleet.test_done",
                                   a.test_id, a.rate_mbps);
          }
          // trace_id 0 means "no trace", so the sampling key shifts by one.
          const obs::span::SpanId span = out.hub->spans.begin(
              ts, obs::Category::kFleet, "fleet.test", obs::span::kNoSpan,
              a.test_id + 1);
          out.hub->spans.attr_f64(span, "truth_mbps", a.truth_mbps);
          out.hub->spans.attr_f64(span, "rate_mbps", a.rate_mbps);
          out.hub->spans.end(span, te);
        }
      }
      if (out.want_health) {
        out.health.note_arrival(static_cast<double>(a.second));
        obs::health::TestSample sample;
        sample.duration_s = static_cast<double>(a.duration_s);
        // Data usage at the settled probing rate for the test's duration.
        sample.data_mb = a.rate_mbps * static_cast<double>(a.duration_s) / 8.0;
        // No estimator in the closed form: deviation is the model-coverage
        // proxy — zero whenever the settled rate covers the client's truth.
        sample.deviation =
            bts::deviation(std::min(a.rate_mbps, a.truth_mbps), a.truth_mbps);
        const auto dims = arrival_dimensions(a);
        sample.dimensions = dims;
        out.health.record_test(sample);
      }
    }
    const std::int64_t w =
        config.window_seconds > 0 ? second / config.window_seconds : windows_total;
    double second_total = 0.0;
    for (std::size_t s = 0; s < config.server_count; ++s) {
      double load = 0.0;
      for (auto& [remaining, mbps] : active[s]) {
        load += mbps;
        --remaining;
      }
      const std::size_t before = active[s].size();
      std::erase_if(active[s], [](const auto& e) { return e.first <= 0; });
      active_entries -= before - active[s].size();
      if (load > 0.0 && w < windows_total) {
        out.window_load[static_cast<std::size_t>(w) * config.server_count + s] +=
            load;
      }
      second_total += load;
    }
    out.second_load[static_cast<std::size_t>(second)] = second_total;
  }
}

FleetSimResult merge_analytic(std::vector<AnalyticShard>& shards,
                              const FleetSimConfig& config) {
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;
  FleetSimResult result;
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const std::int64_t windows_total =
      config.window_seconds > 0 ? total_seconds / config.window_seconds : 0;
  const double fleet_capacity =
      config.server_uplink_mbps * static_cast<double>(config.server_count);

  std::vector<double> window_load(
      static_cast<std::size_t>(windows_total) * config.server_count, 0.0);
  std::vector<double> second_load(static_cast<std::size_t>(total_seconds), 0.0);
  for (const AnalyticShard& shard : shards) {
    result.tests_simulated += shard.tests;
    for (std::size_t i = 0; i < window_load.size(); ++i) {
      window_load[i] += shard.window_load[i];
    }
    for (std::size_t i = 0; i < second_load.size(); ++i) {
      second_load[i] += shard.second_load[i];
    }
  }

  std::uint64_t overload_seconds = 0;
  for (double load : second_load) {
    if (load > fleet_capacity) ++overload_seconds;
  }

  if (config.obs != nullptr && !shards.empty() && shards[0].hub != nullptr) {
    // The merge target can itself rotate: its segments take the index one
    // past the last shard, so concat order stays (shard, segment).
    ShardSpill merge_spill;
    if (!config.obs_spill_dir.empty()) {
      merge_spill.attach(*config.obs, config.obs_spill_dir, shards.size());
    }
    // Component-wise merge in shard order — identical bytes to the fused
    // Hub::merge_from loop, but each component gets its own host-time phase.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.tracer");
      for (const AnalyticShard& shard : shards) {
        config.obs->tracer.merge_from(shard.hub->tracer);
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.metrics");
      for (const AnalyticShard& shard : shards) {
        config.obs->metrics.merge_from(shard.hub->metrics.snapshot());
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.spans");
      for (const AnalyticShard& shard : shards) {
        config.obs->spans.merge_from(shard.hub->spans);
      }
    }
    // Shard concatenation order depends on the partition; the canonical
    // content order does not. After this, the sampled artifact renders
    // byte-identically for every shard count (DESIGN.md §12).
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.canonicalize");
      config.obs->tracer.sort_canonical();
      config.obs->spans.sort_canonical();
    }
    const obs::hostprof::HostScope scope(host_tl, "spill.io");
    std::vector<ShardSpill> spills;
    for (AnalyticShard& shard : shards) spills.push_back(std::move(shard.spill));
    spills.push_back(std::move(merge_spill));
    concat_spill(spills, /*trace_stream=*/true, config.obs_spill_dir);
    concat_spill(spills, /*trace_stream=*/false, config.obs_spill_dir);
    accumulate_spill(spills, result);
  }

  if (config.health != nullptr) {
    const obs::hostprof::HostScope scope(host_tl, "samplelog.replay");
    std::vector<const obs::health::SampleLog*> logs;
    logs.reserve(shards.size());
    for (const AnalyticShard& shard : shards) logs.push_back(&shard.health);
    obs::health::SampleLog::merge_arrivals(logs, *config.health);
    for (const AnalyticShard& shard : shards) {
      shard.health.replay_samples(*config.health);
    }
  }

  // Busy windows in the historical emission order: window-major, then server.
  for (std::int64_t w = 0; w < windows_total; ++w) {
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const double load =
          window_load[static_cast<std::size_t>(w) * config.server_count + s];
      const double util = 100.0 * load /
                          static_cast<double>(config.window_seconds) /
                          config.server_uplink_mbps;
      if (util > 0.0) {
        result.busy_window_utilization.push_back(util);
        // Busy windows only, matching Fig 26's utilization distribution.
        if (config.health != nullptr) {
          config.health->record_egress_utilization(s, util);
        }
      }
    }
  }

  finish_result(result, overload_seconds,
                static_cast<std::uint64_t>(total_seconds));
  return result;
}

/// One packet shard's raw output. Each shard replays its arrivals against a
/// private full-size testbed (own scheduler, fleet, RNG stream, obs hub,
/// health log); the merge concatenates artifacts in shard order and sums the
/// per-window fleet utilization for the overload proxy. Cross-shard egress
/// contention — tests from different shards escalating onto the same
/// server — is the one effect sharding loses.
struct PacketShard {
  std::vector<double> busy_windows;       // per-shard emission order
  std::vector<double> window_total_util;  // fleet-wide util per window
  std::uint64_t tests_simulated = 0;
  std::uint64_t tests_dropped = 0;
  std::unique_ptr<obs::Hub> hub;  // mirror of config.obs; null when disabled
  obs::health::SampleLog health;
  bool want_health = false;
  ShardSpill spill;
  obs::SamplingPolicy policy;  // per-shard copy; may degrade under budget
  obs::ShardTelemetry telemetry;
  obs::ProfRegistry prof;  // private; merged into config.prof after the join
};

void run_packet_shard(std::span<const Arrival> arrivals,
                      const swift::ModelRegistry& registry,
                      const FleetSimConfig& config, std::uint64_t testbed_seed,
                      PacketShard& out) {
  netsim::TestbedConfig tb_cfg;
  tb_cfg.fleet.server_count = config.server_count;
  tb_cfg.fleet.server_uplink = core::Bandwidth::mbps(config.server_uplink_mbps);
  // Client slots are created on demand; start with one so the shared egress
  // links exist before the first utilization window is read.
  netsim::ClientAccessConfig slot_cfg;
  slot_cfg.access_rate = core::Bandwidth::mbps(1000);  // re-set per test
  tb_cfg.clients = {slot_cfg};
  netsim::Testbed testbed(tb_cfg, testbed_seed);
  testbed.scheduler().set_obs(out.hub.get());

  swift::ServerConfig server_cfg;
  server_cfg.uplink = core::Bandwidth::mbps(config.server_uplink_mbps);
  swift::ServerFleet fleet(testbed, server_cfg);

  struct Slot {
    std::size_t client_index = 0;
    std::unique_ptr<swift::WireClient> wire;
    bool busy = false;
    /// Per-test wrapper span; the wire client's swiftest.test nests under it
    /// (the slot pushes it as ambient parent around start()).
    obs::span::SpanId span = obs::span::kNoSpan;
  };
  std::vector<std::unique_ptr<Slot>> slots;
  slots.push_back(std::make_unique<Slot>());
  slots[0]->client_index = 0;

  netsim::Scheduler& sched = testbed.scheduler();
  std::size_t busy_slots = 0;
  auto note_concurrency = [&] {
    if (auto* hub = sched.obs()) {
      hub->metrics.gauge("fleet.concurrent_tests")
          .set(static_cast<double>(busy_slots));
    }
  };
  auto trace_fleet = [&sched](const char* name, std::uint64_t id, double value) {
    if (auto* tr = sched.tracer(obs::Category::kFleet)) {
      tr->record(sched.now(), obs::Category::kFleet, obs::EventKind::kInstant,
                 name, id, value);
    }
  };
  obs::health::HealthSink* health = out.want_health ? &out.health : nullptr;
  auto start_test = [&](const Arrival& a) {
    if (health != nullptr) {
      health->note_arrival(static_cast<double>(a.second));
    }
    if (config.resource != nullptr) config.resource->add_tests(1);
    // Whole-test sampling: keyed on the global draw index, so the decision
    // is identical for every shard count and jobs value. With the default
    // 1/1 policy every test is sampled and nothing below changes.
    const bool sampled_test = out.policy.sampled(a.test_id);
    Slot* slot = nullptr;
    for (auto& candidate : slots) {
      if (!candidate->busy) {
        slot = candidate.get();
        break;
      }
    }
    if (slot == nullptr) {
      if (slots.size() >= config.max_concurrent_tests) {
        ++out.tests_dropped;
        if (auto* hub = sched.obs()) {
          hub->metrics.counter("fleet.tests_dropped").inc();
        }
        if (sampled_test) {
          trace_fleet("fleet.test_dropped", a.first_server, a.rate_mbps);
        }
        obs::logf(obs::LogLevel::kWarn,
                  "fleet_sim: arrival dropped, all %zu client slots busy",
                  slots.size());
        return;
      }
      slots.push_back(std::make_unique<Slot>());
      slot = slots.back().get();
      slot->client_index = testbed.add_client(slot_cfg);
    }
    slot->busy = true;
    ++busy_slots;
    note_concurrency();
    if (auto* hub = sched.obs()) {
      hub->metrics.counter("fleet.tests_started").inc();
      if (sampled_test && out.policy.enabled()) {
        hub->metrics.counter("fleet.tests_sampled").inc();
      }
    }
    if (sampled_test) trace_fleet("fleet.test_start", slot->client_index, a.rate_mbps);
    netsim::ClientContext& ctx = testbed.client(slot->client_index);
    // The suppression flag persists across the context's rebinds for the
    // whole test; every span this test's client (or the wire protocol under
    // it) would begin becomes a no-op when unsampled.
    ctx.spans().set_suppressed(!sampled_test);
    ctx.access_link().set_rate(core::Bandwidth::mbps(a.truth_mbps));

    swift::SwiftestConfig wc_cfg;
    wc_cfg.tech = a.tech;
    wc_cfg.server_uplink_mbps = config.server_uplink_mbps;
    slot->wire = std::make_unique<swift::WireClient>(wc_cfg, registry, server_cfg);
    slot->wire->attach_fleet(fleet);
    slot->wire->set_forced_server(a.first_server);
    auto& sctx = ctx.spans();
    slot->span = sctx.begin(obs::Category::kFleet, "fleet.test");
    if (auto* spans = sctx.store()) {
      spans->attr_f64(slot->span, "truth_mbps", a.truth_mbps);
      spans->attr_u64(slot->span, "slot", slot->client_index);
    }
    sctx.push(slot->span);
    slot->wire->start(ctx, [slot, &sched, &busy_slots, &note_concurrency,
                            &trace_fleet, health, a,
                            sampled_test](const bts::BtsResult& r) {
      slot->busy = false;
      --busy_slots;
      note_concurrency();
      if (sampled_test) {
        trace_fleet("fleet.test_done", slot->client_index, r.bandwidth_mbps);
      }
      if (auto* hub = sched.obs()) {
        hub->spans.attr_f64(slot->span, "estimate_mbps", r.bandwidth_mbps);
        hub->spans.end(slot->span, sched.now());
      }
      slot->span = obs::span::kNoSpan;
      if (health != nullptr) {
        obs::health::TestSample sample;
        sample.duration_s = core::to_seconds(r.total_duration());
        sample.data_mb = r.data_used.megabytes();
        sample.deviation = bts::deviation(r.bandwidth_mbps, a.truth_mbps);
        const auto dims = arrival_dimensions(a);
        sample.dimensions = dims;
        health->record_test(sample);
      }
    });
    sctx.pop(slot->span);
    ++out.tests_simulated;
  };

  for (const Arrival& a : arrivals) {
    sched.schedule_at(a.second * core::seconds(1), [&start_test, &a] { start_test(a); });
  }

  // Periodic utilization windows over each server's shared egress queue: the
  // delivered-byte delta per window is the ground-truth egress utilization,
  // queueing included — the measurement the analytic backend approximates.
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;
  const core::SimDuration window = config.window_seconds * core::seconds(1);
  const double window_capacity_mbit =
      config.server_uplink_mbps * static_cast<double>(config.window_seconds);
  std::vector<std::int64_t> last_delivered(config.server_count, 0);
  std::uint64_t windows_elapsed = 0;
  std::function<void()> tick = [&] {
    double total_util = 0.0;
    for (std::size_t s = 0; s < config.server_count; ++s) {
      const netsim::LinkBase* egress = testbed.server_egress(s);
      const std::int64_t delivered =
          egress != nullptr ? egress->stats().bytes_delivered : 0;
      const std::int64_t delta = delivered - last_delivered[s];
      last_delivered[s] = delivered;
      const double util =
          100.0 * static_cast<double>(delta) * 8.0 / 1e6 / window_capacity_mbit;
      if (util > 0.0) {
        out.busy_windows.push_back(util);
        if (health != nullptr) {
          health->record_egress_utilization(s, util);
        }
      }
      total_util += util;
      if (auto* hub = sched.obs()) {
        if (util > 0.0) {
          hub->metrics
              .histogram("fleet.window_utilization",
                         {5.0, 15.0, 30.0, 45.0, 60.0, 80.0, 95.0})
              .observe(util);
        }
        if (auto* tr = sched.tracer(obs::Category::kFleet)) {
          // One series per server (id = server index), sampled each window.
          tr->record(sched.now(), obs::Category::kFleet, obs::EventKind::kCounter,
                     "fleet.egress_util", s, util);
        }
      }
    }
    // The overload proxy (fleet egress effectively saturated) needs the
    // fleet-wide utilization, which only the merge can see — record this
    // shard's contribution per window and let the merge sum and threshold.
    out.window_total_util.push_back(total_util);
    // Budget check once per window: a deterministic sim-time cadence, so
    // degradation points depend only on (workload, shards, budget).
    out.policy.note_footprint(obs_footprint_bytes(sched.obs(), out.health));
    ++windows_elapsed;
    if (static_cast<std::int64_t>(windows_elapsed) * config.window_seconds <
        total_seconds) {
      sched.schedule_in(window, tick);
    }
  };
  sched.schedule_at(window, tick);

  // Let the tail of the last tests (max_duration + drain) play out.
  sched.run_until(total_seconds * core::seconds(1) + core::seconds(30));

  // Protocol-level per-server load balance (sessions, probe egress).
  if (health != nullptr) fleet.record_health(*health);

  // Scheduler-side self-telemetry, captured before the testbed dies with
  // this frame (the common fields are filled by the caller).
  const netsim::Scheduler::AllocStats alloc = sched.alloc_stats();
  const netsim::CalendarEventQueue::Stats cal = sched.calendar_stats();
  out.telemetry.events_executed = sched.events_executed();
  out.telemetry.slab_slots = alloc.slab_slots;
  out.telemetry.callback_heap_fallbacks = alloc.callback_heap_fallbacks;
  out.telemetry.payload_nodes = alloc.payload_nodes;
  out.telemetry.payload_heap_spills = alloc.payload_heap_spills;
  out.telemetry.transit_nodes = alloc.transit_nodes;
  out.telemetry.transit_peak_live = alloc.transit_peak_live;
  out.telemetry.calendar_sweeps = cal.sweeps;
  out.telemetry.calendar_rebases = cal.rebases;
  out.telemetry.calendar_far_pushes = cal.far_pushes;
}

FleetSimResult merge_packet(std::vector<PacketShard>& shards,
                            const FleetSimConfig& config) {
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;
  FleetSimResult result;
  const std::int64_t total_seconds =
      static_cast<std::int64_t>(config.days) * 24 * 3600;

  std::size_t windows_total = 0;
  for (const PacketShard& shard : shards) {
    result.tests_simulated += shard.tests_simulated;
    result.tests_dropped += shard.tests_dropped;
    windows_total = std::max(windows_total, shard.window_total_util.size());
  }

  // Fleet-wide overload: sum each window's per-shard utilization, then apply
  // the saturation threshold — for one shard this is the historical check.
  std::vector<double> window_total(windows_total, 0.0);
  for (const PacketShard& shard : shards) {
    for (std::size_t w = 0; w < shard.window_total_util.size(); ++w) {
      window_total[w] += shard.window_total_util[w];
    }
  }
  std::uint64_t overloaded_windows = 0;
  for (double total : window_total) {
    if (total >= 98.0 * static_cast<double>(config.server_count)) {
      ++overloaded_windows;
    }
  }

  std::size_t busy_total = 0;
  for (const PacketShard& shard : shards) busy_total += shard.busy_windows.size();
  result.busy_window_utilization.reserve(busy_total);
  for (const PacketShard& shard : shards) {
    result.busy_window_utilization.insert(result.busy_window_utilization.end(),
                                          shard.busy_windows.begin(),
                                          shard.busy_windows.end());
  }

  if (config.obs != nullptr) {
    ShardSpill merge_spill;
    if (!config.obs_spill_dir.empty()) {
      merge_spill.attach(*config.obs, config.obs_spill_dir, shards.size());
    }
    // Component-wise merge in shard order (same bytes as the fused hub
    // merge), one host-time phase per component.
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.tracer");
      for (const PacketShard& shard : shards) {
        if (shard.hub != nullptr) config.obs->tracer.merge_from(shard.hub->tracer);
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.metrics");
      for (const PacketShard& shard : shards) {
        if (shard.hub != nullptr) {
          config.obs->metrics.merge_from(shard.hub->metrics.snapshot());
        }
      }
    }
    {
      const obs::hostprof::HostScope scope(host_tl, "merge.spans");
      for (const PacketShard& shard : shards) {
        if (shard.hub != nullptr) config.obs->spans.merge_from(shard.hub->spans);
      }
    }
    if (config.sample.enabled() || config.obs_budget_mb > 0) {
      // Canonical content order, as in the analytic merge. The packet
      // backend's event *content* still differs across shard counts (shards
      // lose cross-shard egress contention), so unlike the analytic path
      // this only guarantees independence from --jobs.
      const obs::hostprof::HostScope scope(host_tl, "merge.canonicalize");
      config.obs->tracer.sort_canonical();
      config.obs->spans.sort_canonical();
    }
    const obs::hostprof::HostScope scope(host_tl, "spill.io");
    std::vector<ShardSpill> spills;
    for (PacketShard& shard : shards) spills.push_back(std::move(shard.spill));
    spills.push_back(std::move(merge_spill));
    concat_spill(spills, /*trace_stream=*/true, config.obs_spill_dir);
    concat_spill(spills, /*trace_stream=*/false, config.obs_spill_dir);
    accumulate_spill(spills, result);
  }

  if (config.health != nullptr) {
    const obs::hostprof::HostScope scope(host_tl, "samplelog.replay");
    std::vector<const obs::health::SampleLog*> logs;
    logs.reserve(shards.size());
    for (const PacketShard& shard : shards) logs.push_back(&shard.health);
    obs::health::SampleLog::merge_arrivals(logs, *config.health);
    for (const PacketShard& shard : shards) {
      shard.health.replay_samples(*config.health);
    }
  }

  finish_result(result,
                overloaded_windows * static_cast<std::uint64_t>(config.window_seconds),
                static_cast<std::uint64_t>(total_seconds));
  return result;
}

}  // namespace

FleetSimResult simulate_fleet(std::span<const dataset::TestRecord> population,
                              const swift::ModelRegistry& registry,
                              const FleetSimConfig& config) {
  FleetSimResult result;
  if (population.empty() || config.server_count == 0) return result;
  const std::size_t shard_count = std::max<std::size_t>(1, config.shards);
  const std::size_t jobs = std::max<std::size_t>(1, config.jobs);
  obs::hostprof::Timeline* host_tl =
      config.hostprof != nullptr ? &config.hostprof->main() : nullptr;
  if (config.hostprof != nullptr) {
    config.hostprof->set_run_shape(shard_count, jobs);
  }

  const auto run_start = std::chrono::steady_clock::now();
  if (config.resource != nullptr) config.resource->begin_run(shard_count);
  const auto finish_resource = [&] {
    if (config.resource == nullptr) return;
    config.resource->finish_run(std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - run_start)
                                    .count());
  };

  // Per-shard sampling policy: salted with the run seed, budget split evenly
  // so the per-shard slice is a pure function of (budget, shards). A budget
  // without an explicit sample spec starts at 1/1 and only degrades if the
  // footprint actually exceeds the slice.
  obs::SamplingPolicy base_policy = config.sample;
  base_policy.set_salt(config.seed);
  if (config.obs_budget_mb > 0) {
    base_policy.set_budget_bytes(config.obs_budget_mb * 1024ull * 1024ull /
                                 static_cast<std::uint64_t>(shard_count));
  }
  const bool sampling_active =
      base_policy.enabled() || config.obs_budget_mb > 0;

  std::vector<Arrival> workload;
  {
    const obs::hostprof::HostScope scope(host_tl, "workload.gen");
    workload = generate_workload(population, registry, config);
  }

  // Partition by the stable hash of each arrival's first server; relative
  // order within a shard stays chronological. One shard takes everything —
  // the legacy unsharded run.
  std::vector<std::vector<Arrival>> parts(shard_count);
  {
    const obs::hostprof::HostScope scope(host_tl, "workload.partition");
    if (shard_count == 1) {
      parts[0] = std::move(workload);
    } else {
      obs::ProfScope prof(config.prof, "fleet.partition");
      for (const Arrival& a : workload) {
        parts[shard_of(a.first_server, shard_count)].push_back(a);
      }
    }
  }

  if (config.backend == FleetBackend::kPacket && config.server_uplink_mbps > 0.0) {
    std::vector<PacketShard> outputs(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      PacketShard& out = outputs[s];
      out.want_health = config.health != nullptr;
      out.policy = base_policy;
      if (config.obs != nullptr) {
        out.hub = obs::Hub::mirror_of(*config.obs);
        out.spill.attach(*out.hub, config.obs_spill_dir, s);
        if (sampling_active) {
          // Server sessions key on the wire nonce; unsampled tests never
          // register an anchor, so sampled mode drops their orphan roots.
          out.hub->spans.set_sampled_mode(true);
          // Span ids are store-local and partition-dependent; the begin/end
          // tracer mirror would leak them into the merged trace, so under
          // sampling spans mirror into metrics only.
          out.hub->spans.set_sinks(nullptr, &out.hub->metrics);
        }
      }
    }
    {
      obs::ProfScope prof(config.prof, "fleet.replay_packet");
      run_shards(
          shard_count, jobs,
          [&](std::size_t s) {
        const auto t0 = std::chrono::steady_clock::now();
        {
          // Per-shard registry: lock-free on the worker, merged after join.
          obs::ProfScope shard_prof(
              config.prof != nullptr ? &outputs[s].prof : nullptr,
              "fleet.shard_replay");
          run_packet_shard(parts[s], registry, config,
                           core::stream_seed(config.seed ^ kTestbedSeedSalt, s),
                           outputs[s]);
        }
        PacketShard& out = outputs[s];
        obs::ShardTelemetry& t = out.telemetry;
        t.shard = s;
        t.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        t.tests = out.tests_simulated;
        t.health_dropped = out.health.dropped();
        t.sample_degradations = out.policy.degradations();
        if (out.hub != nullptr) {
          t.trace_dropped = out.hub->tracer.dropped();
          t.trace_spilled = out.hub->tracer.spilled();
          t.span_dropped = out.hub->spans.dropped();
          t.span_spilled = out.hub->spans.spilled();
        }
        if (config.resource != nullptr) {
          config.resource->record_shard(t);
          config.resource->note_shard_done();
          config.resource->sample_usage();
        }
          },
          config.hostprof);
      if (config.prof != nullptr) {
        for (const PacketShard& out : outputs) config.prof->merge_from(out.prof);
      }
    }
    obs::ProfScope prof(config.prof, "fleet.merge");
    const obs::hostprof::HostScope merge_scope(host_tl, "merge");
    result = merge_packet(outputs, config);
    finish_resource();
    return result;
  }

  std::vector<AnalyticShard> outputs(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    AnalyticShard& out = outputs[s];
    out.want_health = config.health != nullptr;
    out.policy = base_policy;
    // The analytic backend emits observability only under sampling (or a
    // budget): its legacy contract is "no obs emission", and the sampled
    // fleet.test events/spans are the artifact the byte-identity gate pins.
    if (config.obs != nullptr && sampling_active) {
      out.hub = obs::Hub::mirror_of(*config.obs);
      out.spill.attach(*out.hub, config.obs_spill_dir, s);
      // Analytic fleet.test spans root their trace trees explicitly, so
      // sampled mode stays off; only the id-leaking tracer mirror goes.
      out.hub->spans.set_sinks(nullptr, &out.hub->metrics);
    }
  }
  {
    obs::ProfScope prof(config.prof, "fleet.replay_analytic");
    run_shards(
        shard_count, jobs,
        [&](std::size_t s) {
      const auto t0 = std::chrono::steady_clock::now();
      {
        obs::ProfScope shard_prof(
            config.prof != nullptr ? &outputs[s].prof : nullptr,
            "fleet.shard_replay");
        run_analytic_shard(parts[s], config, outputs[s]);
      }
      AnalyticShard& out = outputs[s];
      obs::ShardTelemetry& t = out.telemetry;
      t.shard = s;
      t.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      t.tests = out.tests;
      t.health_dropped = out.health.dropped();
      t.sample_degradations = out.policy.degradations();
      if (out.hub != nullptr) {
        t.trace_dropped = out.hub->tracer.dropped();
        t.trace_spilled = out.hub->tracer.spilled();
        t.span_dropped = out.hub->spans.dropped();
        t.span_spilled = out.hub->spans.spilled();
      }
      if (config.resource != nullptr) {
        config.resource->record_shard(t);
        config.resource->note_shard_done();
        config.resource->sample_usage();
      }
        },
        config.hostprof);
    if (config.prof != nullptr) {
      for (const AnalyticShard& out : outputs) config.prof->merge_from(out.prof);
    }
  }
  obs::ProfScope prof(config.prof, "fleet.merge");
  const obs::hostprof::HostScope merge_scope(host_tl, "merge");
  result = merge_analytic(outputs, config);
  finish_resource();
  return result;
}

}  // namespace swiftest::deploy
