// Rotating artifact spill: full rings flush to disk instead of dropping.
//
// A Tracer ring or SpanStore that fills mid-run historically overwrote or
// refused data. A SpillWriter gives each shard's stores a place to rotate
// into instead: every flush writes one JSONL *segment* file
// (`<stream>.shard0003.seg0007.jsonl`) under the spill directory, in the
// same line format as the corresponding exporter, so segments concatenate
// with the final in-memory remainder into one complete stream. Segment
// content and naming are deterministic (sim-time-stamped events, shard and
// segment indices — never wall clock or thread ids), and the merge stage
// concatenates segments in (shard, segment) order, so the combined spill
// file is independent of `--jobs`.
//
// The full event stream of a spilled run is
//   <stream>.spill.jsonl ++ the exported in-memory remainder
// (e.g. trace.spill.jsonl followed by the --trace-jsonl file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/span/span.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

class SpillWriter {
 public:
  /// Segments land in `dir` (which must exist) as
  /// `<stream>.shard%04u.seg%04u.jsonl`.
  SpillWriter(std::string dir, std::string stream, std::size_t shard);

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Writes `count` trace events as one JSONL segment (write_trace_jsonl's
  /// line format).
  void write_trace_segment(const TraceEvent* events, std::size_t count);

  /// Writes `count` span records as one JSONL segment (one span-document
  /// entry per line).
  void write_span_segment(const span::SpanRecord* spans, std::size_t count);

  [[nodiscard]] std::size_t segments() const noexcept { return paths_.size(); }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  /// False after any segment failed to open or write.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Segment file paths in write (= rotation) order.
  [[nodiscard]] const std::vector<std::string>& segment_paths() const noexcept {
    return paths_;
  }

 private:
  void write_segment(const std::string& body);

  std::string dir_;
  std::string stream_;
  std::size_t shard_;
  std::vector<std::string> paths_;
  std::uint64_t bytes_ = 0;
  bool ok_ = true;
};

/// Concatenates segment files in the given order into `out_path`. Returns
/// false (with a reason in `error`, when provided) if any file cannot be
/// read or the output cannot be written.
bool concat_segments(const std::vector<std::string>& segment_paths,
                     const std::string& out_path, std::string* error = nullptr);

/// Manifest summary of one spill writer: segments rotated, bytes written,
/// and whether every segment landed intact.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const SpillWriter& writer);

}  // namespace swiftest::obs
