#include "obs/manifest/manifest.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/health/json.hpp"
#include "obs/json_util.hpp"

namespace swiftest::obs::manifest {
namespace {

void append_value_object(std::string& out, const ValueList& values) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : values) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':';
    append_double(out, value);
  }
  out += '}';
}

bool require_string(const health::JsonValue& line, std::string_view key,
                    std::string* out, std::string* error, std::size_t line_no) {
  const health::JsonValue* member = line.get(key);
  if (member == nullptr || member->type() != health::JsonValue::Type::kString) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": missing string field \"" +
               std::string(key) + "\"";
    }
    return false;
  }
  *out = member->as_string();
  return true;
}

bool require_number(const health::JsonValue& line, std::string_view key,
                    double* out, std::string* error, std::size_t line_no) {
  const health::JsonValue* member = line.get(key);
  if (member == nullptr || member->type() != health::JsonValue::Type::kNumber) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": missing number field \"" +
               std::string(key) + "\"";
    }
    return false;
  }
  *out = member->as_number();
  return true;
}

}  // namespace

const ArtifactRecord* RunManifest::find_artifact(std::string_view name) const {
  for (const ArtifactRecord& artifact : artifacts) {
    if (artifact.name == name) return &artifact;
  }
  return nullptr;
}

const ValueList* RunManifest::find_summary(std::string_view layer) const {
  const auto it = summaries.find(std::string(layer));
  return it == summaries.end() ? nullptr : &it->second;
}

std::optional<std::string> RunManifest::config_value(std::string_view key) const {
  for (const auto& [config_key, value] : config) {
    if (config_key == key) return value;
  }
  return std::nullopt;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string content_hash(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::uint64_t hash = fnv1a64(bytes);
  std::string out = "fnv1a64:";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(hash >> shift) & 0xf];
  }
  return out;
}

std::optional<ArtifactRecord> artifact_from_file(const std::string& name,
                                                 const std::string& path,
                                                 std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read artifact " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string content = buffer.str();

  ArtifactRecord record;
  record.name = name;
  record.path = path;
  record.bytes = content.size();
  record.rows = static_cast<std::uint64_t>(
      std::count(content.begin(), content.end(), '\n'));
  record.hash = content_hash(content);
  return record;
}

void write_manifest_jsonl(const RunManifest& manifest, std::ostream& out) {
  std::string line;
  line.reserve(256);

  line = "{\"type\":\"manifest\",\"version\":";
  append_u64(line, static_cast<std::uint64_t>(manifest.version));
  line += ",\"tool\":";
  append_json_string(line, manifest.tool);
  line += ",\"command\":";
  append_json_string(line, manifest.command);
  line += ",\"build\":";
  append_json_string(line, manifest.build);
  line += "}\n";
  out << line;

  for (const auto& [key, value] : manifest.config) {
    line = "{\"type\":\"config\",\"key\":";
    append_json_string(line, key);
    line += ",\"value\":";
    append_json_string(line, value);
    line += "}\n";
    out << line;
  }

  for (const ArtifactRecord& artifact : manifest.artifacts) {
    line = "{\"type\":\"artifact\",\"name\":";
    append_json_string(line, artifact.name);
    line += ",\"path\":";
    append_json_string(line, artifact.path);
    line += ",\"bytes\":";
    append_u64(line, artifact.bytes);
    line += ",\"rows\":";
    append_u64(line, artifact.rows);
    line += ",\"hash\":";
    append_json_string(line, artifact.hash);
    line += "}\n";
    out << line;
  }

  for (const auto& [layer, values] : manifest.summaries) {
    line = "{\"type\":\"summary\",\"layer\":";
    append_json_string(line, layer);
    line += ",\"values\":";
    append_value_object(line, values);
    line += "}\n";
    out << line;
  }

  for (const auto& [name, value] : manifest.bench) {
    line = "{\"type\":\"bench\",\"name\":";
    append_json_string(line, name);
    line += ",\"value\":";
    append_double(line, value);
    line += "}\n";
    out << line;
  }

  for (const SloVerdict& slo : manifest.slos) {
    line = "{\"type\":\"slo\",\"name\":";
    append_json_string(line, slo.name);
    line += ",\"dimension\":";
    append_json_string(line, slo.dimension);
    line += ",\"stat\":";
    append_json_string(line, slo.stat);
    line += ",\"observed\":";
    append_double(line, slo.observed);
    line += ",\"status\":";
    append_json_string(line, slo.status);
    line += "}\n";
    out << line;
  }

  for (const auto& [key, value] : manifest.host) {
    line = "{\"type\":\"host\",\"key\":";
    append_json_string(line, key);
    line += ",\"value\":";
    append_double(line, value);
    line += "}\n";
    out << line;
  }
}

std::optional<RunManifest> parse_manifest_jsonl(std::string_view text,
                                                std::string* error) {
  RunManifest manifest;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view raw = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (raw.empty()) continue;

    std::string parse_error;
    const std::optional<health::JsonValue> parsed =
        health::parse_json(raw, &parse_error);
    if (!parsed.has_value() || !parsed->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " +
                 (parsed.has_value() ? "not a JSON object" : parse_error);
      }
      return std::nullopt;
    }
    const health::JsonValue& line = *parsed;
    const std::string type = line.get_string("type", "");

    if (type == "manifest") {
      saw_header = true;
      double version = 0.0;
      if (!require_number(line, "version", &version, error, line_no) ||
          !require_string(line, "tool", &manifest.tool, error, line_no) ||
          !require_string(line, "command", &manifest.command, error, line_no) ||
          !require_string(line, "build", &manifest.build, error, line_no)) {
        return std::nullopt;
      }
      manifest.version = static_cast<int>(version);
    } else if (type == "config") {
      std::string key;
      std::string value;
      if (!require_string(line, "key", &key, error, line_no) ||
          !require_string(line, "value", &value, error, line_no)) {
        return std::nullopt;
      }
      manifest.config.emplace_back(std::move(key), std::move(value));
    } else if (type == "artifact") {
      ArtifactRecord artifact;
      double bytes = 0.0;
      double rows = 0.0;
      if (!require_string(line, "name", &artifact.name, error, line_no) ||
          !require_string(line, "path", &artifact.path, error, line_no) ||
          !require_number(line, "bytes", &bytes, error, line_no) ||
          !require_number(line, "rows", &rows, error, line_no) ||
          !require_string(line, "hash", &artifact.hash, error, line_no)) {
        return std::nullopt;
      }
      artifact.bytes = line.get("bytes")->as_u64();
      artifact.rows = line.get("rows")->as_u64();
      manifest.artifacts.push_back(std::move(artifact));
    } else if (type == "summary") {
      std::string layer;
      if (!require_string(line, "layer", &layer, error, line_no)) {
        return std::nullopt;
      }
      const health::JsonValue* values = line.get("values");
      if (values == nullptr || !values->is_object()) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) +
                   ": missing object field \"values\"";
        }
        return std::nullopt;
      }
      ValueList& list = manifest.summaries[layer];
      for (const auto& [key, value] : values->members()) {
        list.emplace_back(key, value.as_number());
      }
    } else if (type == "bench") {
      std::string name;
      double value = 0.0;
      if (!require_string(line, "name", &name, error, line_no) ||
          !require_number(line, "value", &value, error, line_no)) {
        return std::nullopt;
      }
      manifest.bench.emplace_back(std::move(name), value);
    } else if (type == "slo") {
      SloVerdict slo;
      if (!require_string(line, "name", &slo.name, error, line_no) ||
          !require_string(line, "dimension", &slo.dimension, error, line_no) ||
          !require_string(line, "stat", &slo.stat, error, line_no) ||
          !require_number(line, "observed", &slo.observed, error, line_no) ||
          !require_string(line, "status", &slo.status, error, line_no)) {
        return std::nullopt;
      }
      manifest.slos.push_back(std::move(slo));
    } else if (type == "host") {
      std::string key;
      double value = 0.0;
      if (!require_string(line, "key", &key, error, line_no) ||
          !require_number(line, "value", &value, error, line_no)) {
        return std::nullopt;
      }
      manifest.host.emplace_back(std::move(key), value);
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": unknown manifest record type \"" + type + "\"";
      }
      return std::nullopt;
    }
  }

  if (!saw_header) {
    if (error != nullptr) *error = "missing \"manifest\" header line";
    return std::nullopt;
  }
  return manifest;
}

std::optional<RunManifest> load_manifest_file(const std::string& path,
                                              std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read manifest " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_manifest_jsonl(buffer.str(), error);
}

}  // namespace swiftest::obs::manifest
