// Run manifests: the machine-readable record of what a run *was*.
//
// Every swiftest-cli command can emit a RunManifest (--manifest-out; on by
// default for `fleet`): the resolved configuration, build identity, a
// content hash + row count for every artifact the run wrote, each obs
// layer's summarize_for_manifest() values, the run's headline bench values,
// and its SLO verdicts. Manifests are the inputs of `swiftest-cli obs diff`
// (obs/diff/diff.hpp): two manifests — plus the artifacts they point at —
// are enough to explain *what changed and why* between two runs, the
// cross-run discipline the measurement platform's month-over-month analyses
// (paper §3, §6) are built on.
//
// Serialized form is JSONL, one self-describing record per line, so CI can
// validate the schema line by line (the same pattern as PROF JSONL):
//
//   {"type":"manifest","version":1,"tool":"swiftest-cli","command":"fleet",
//    "build":"<git sha>"}
//   {"type":"config","key":"seed","value":"99"}
//   {"type":"artifact","name":"health","path":"...","bytes":N,"rows":N,
//    "hash":"fnv1a64:0123456789abcdef"}
//   {"type":"summary","layer":"trace","values":{"events":N,...}}
//   {"type":"bench","name":"util_median_pct","value":37.5}
//   {"type":"slo","name":"...","dimension":"all","stat":"p95",
//    "observed":1.2,"status":"pass"}
//   {"type":"host","key":"jobs","value":4}
//
// Determinism contract: everything except "host" lines and artifact "path"
// fields is a pure function of (command, config, seed) — two runs of the
// same fleet-day at different --jobs emit manifests whose config, summary,
// bench, slo, and artifact hash/rows/bytes lines are byte-identical. Host
// lines carry wall-clock and worker-count facts and are never gated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swiftest::obs::manifest {

inline constexpr int kManifestVersion = 1;

/// One artifact the run wrote, identified by a stable layer name ("health",
/// "trace_jsonl", "spans", "metrics", "prof", ...) — the differ matches
/// artifacts across runs by this name, never by path.
struct ArtifactRecord {
  std::string name;
  std::string path;
  std::uint64_t bytes = 0;
  std::uint64_t rows = 0;  // newline count — lines for JSONL, rows for md
  std::string hash;        // "fnv1a64:<16 hex digits>" over the full content
};

/// One SLO verdict carried into the manifest so a diff can flag a run that
/// started violating an objective without re-evaluating the spec.
struct SloVerdict {
  std::string name;
  std::string dimension;
  std::string stat;
  double observed = 0.0;
  std::string status;  // "pass" | "skipped" | "violated"
};

/// Flat (key, value) list in deterministic order — the common currency of
/// config, summary, bench, and host lines.
using ValueList = std::vector<std::pair<std::string, double>>;

struct RunManifest {
  int version = kManifestVersion;
  std::string tool = "swiftest-cli";
  std::string command;
  std::string build;  // git-describe-style build identity, "unknown" outside git
  /// Resolved deterministic configuration (seed, shards, backend, ...) —
  /// never --jobs or anything host-dependent (those are host lines).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<ArtifactRecord> artifacts;
  /// Layer name -> summarize_for_manifest() values ("trace", "metrics",
  /// "spans", "health", "hostprof", "spill.trace", "spill.spans").
  std::map<std::string, ValueList> summaries;
  /// Headline result values ("tests_simulated", "util_median_pct", ...) in
  /// insertion order.
  ValueList bench;
  std::vector<SloVerdict> slos;
  /// Host-side facts (wall_ms, jobs): informational, never diff-gated.
  ValueList host;

  [[nodiscard]] const ArtifactRecord* find_artifact(std::string_view name) const;
  [[nodiscard]] const ValueList* find_summary(std::string_view layer) const;
  [[nodiscard]] std::optional<std::string> config_value(std::string_view key) const;
};

/// FNV-1a 64-bit over a byte string — the manifest's content hash. Not
/// cryptographic; collision-resistant enough to certify "same artifact" in
/// CI, with zero dependencies and deterministic output everywhere.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// "fnv1a64:<16 lowercase hex digits>" of `bytes`.
[[nodiscard]] std::string content_hash(std::string_view bytes);

/// Builds an ArtifactRecord by reading `path` (hash, bytes, newline rows).
/// Returns nullopt (with a reason in `error`) when the file cannot be read.
[[nodiscard]] std::optional<ArtifactRecord> artifact_from_file(
    const std::string& name, const std::string& path, std::string* error = nullptr);

/// Writes the manifest as JSONL (deterministic rendering, obs/json_util
/// numbers; lines in the fixed order manifest/config/artifact/summary/
/// bench/slo/host).
void write_manifest_jsonl(const RunManifest& manifest, std::ostream& out);

/// Parses a manifest document. Returns nullopt (with a line-numbered reason
/// in `error`) on malformed JSON, an unknown record type, or a missing
/// required field — the same checks the CI schema gate runs.
[[nodiscard]] std::optional<RunManifest> parse_manifest_jsonl(
    std::string_view text, std::string* error = nullptr);

/// Loads and parses a manifest file from disk.
[[nodiscard]] std::optional<RunManifest> load_manifest_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace swiftest::obs::manifest
