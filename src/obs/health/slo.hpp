// Declarative service-level objectives over health snapshots.
//
// An SLO spec is a JSON document:
//
//   {"slos": [
//     {"name": "mean-deviation", "metric": "deviation", "stat": "mean",
//      "dimension": "all", "max": 0.10, "min_samples": 100},
//     {"name": "server-egress-margin", "metric": "egress_util",
//      "stat": "p99", "dimension": "server:*", "max": 90.0}
//   ]}
//
// metric: duration_s | data_mb | deviation | egress_util (any recorded name)
// stat:   mean | min | max | p50 | p95 | p99 | count | sum
// dimension: an exact key ("all", "tech:4g"), or "<prefix>:*" to apply the
//   objective to every key with that prefix ("server:*" checks each server).
// max / min: threshold(s); at least one must be present.
// min_samples: cells with fewer samples are skipped (reported, not failed) —
//   a thin slice of traffic shouldn't flap a gate. A dimension that matches
//   no cell at all IS a violation (the signal the SLO guards is missing).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/health/monitor.hpp"

namespace swiftest::obs::health {

struct SloSpec {
  std::string name;
  std::string metric;
  std::string stat = "p95";
  std::string dimension = "all";
  std::optional<double> max_value;
  std::optional<double> min_value;
  std::uint64_t min_samples = 1;
};

enum class SloStatus {
  kPass,
  kSkipped,   // matched cell below min_samples
  kViolated,  // threshold breached, or no matching cell
};

struct SloResult {
  SloSpec spec;
  std::string dimension;  // the concrete cell evaluated
  double observed = 0.0;
  std::uint64_t samples = 0;
  SloStatus status = SloStatus::kPass;
};

struct SloEvaluation {
  std::vector<SloResult> results;
  [[nodiscard]] std::size_t violations() const;
  [[nodiscard]] bool ok() const { return violations() == 0; }
};

/// Parses an SLO spec document ({"slos": [...]}); nullopt + `error` on
/// malformed JSON or a spec missing name/metric/threshold.
[[nodiscard]] std::optional<std::vector<SloSpec>> parse_slo_specs(
    std::string_view json_text, std::string* error = nullptr);

/// Loads and parses a spec file from disk.
[[nodiscard]] std::optional<std::vector<SloSpec>> load_slo_file(
    const std::string& path, std::string* error = nullptr);

/// Evaluates every spec against the snapshot. A "<prefix>:*" dimension
/// expands to one result per matching cell, in key order.
[[nodiscard]] SloEvaluation evaluate_slos(const std::vector<SloSpec>& specs,
                                          const HealthSnapshot& snapshot);

/// One stat from an aggregate by name ("mean", "p99", ...); nullopt for an
/// unknown stat name.
[[nodiscard]] std::optional<double> stat_value(const AggregateStats& stats,
                                               std::string_view stat);

}  // namespace swiftest::obs::health
