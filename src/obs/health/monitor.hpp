// Online fleet-health aggregation (the §5 operational signals).
//
// A HealthMonitor consumes the per-test and per-window observations a run
// produces — test duration, data usage, deviation from ground truth, and
// per-server egress utilization — and maintains streaming aggregates only:
// count/sum/min/max plus P² p50/p95/p99 per (metric, dimension) cell, and a
// windowed test-arrival rate. No per-event data is retained, so memory is
// O(dimensions), not O(tests).
//
// Dimension keys are plain strings ("all", "tech:4g", "isp:1", "server:7");
// callers build them from the src/dataset taxonomy (dataset::dimension_key)
// so the health layer itself depends only on core. Every sample lands in the
// "all" cell plus each provided dimension cell. Snapshots are std::map-keyed
// and therefore deterministically ordered — same seed, same bytes.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

#include "obs/health/quantile.hpp"

namespace swiftest::obs::health {

/// Point-in-time summary of one (metric, dimension) cell.
struct AggregateStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Streaming aggregate: moments plus three P² quantile trackers.
class StreamingAggregate {
 public:
  void observe(double v);
  [[nodiscard]] AggregateStats stats() const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

/// Per-window event-rate tracker over a monotone (sim-time) clock. Windows
/// with no events between the first and last observed window count as empty
/// so the mean is a true rate, not a busy-window mean.
class WindowedRate {
 public:
  explicit WindowedRate(double window_seconds = 10.0);

  /// Notes one event at time `t_seconds` (must be non-decreasing).
  void note(double t_seconds);

  struct Stats {
    double window_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;           // windows spanned, incl. empty ones
    double mean_per_window = 0.0;
    double max_per_window = 0.0;
  };
  /// Folds the current partial window into the result.
  [[nodiscard]] Stats stats() const;

 private:
  double window_seconds_;
  std::int64_t current_window_ = -1;
  std::uint64_t current_count_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t closed_windows_ = 0;
  double max_per_window_ = 0.0;
};

/// One completed bandwidth test, as the health layer sees it.
struct TestSample {
  double duration_s = 0.0;   // total test duration (probe + selection)
  double data_mb = 0.0;      // radio data consumed
  double deviation = 0.0;    // |est - truth| / max(est, truth); 0 = perfect
  /// Dimension keys ("tech:4g", "isp:1", "server:12", ...); empty entries
  /// are skipped. The sample always also lands in the "all" cell.
  std::span<const std::string> dimensions;
};

/// Where health observations land. HealthMonitor aggregates them in place;
/// SampleLog (sample_log.hpp) buffers them verbatim so a sharded run can
/// collect per-shard streams concurrently and replay them into one monitor
/// in a deterministic order after the shards join.
class HealthSink {
 public:
  virtual ~HealthSink() = default;

  /// Notes a test arrival at sim time `t_seconds` (feeds the windowed rate).
  virtual void note_arrival(double t_seconds) = 0;

  /// Records a completed test: duration, data, and deviation each land in
  /// "all" plus every dimension key in `sample.dimensions`.
  virtual void record_test(const TestSample& sample) = 0;

  /// Records one egress-utilization window sample (%) for a server; lands in
  /// "all" and "server:<index>".
  virtual void record_egress_utilization(std::uint64_t server, double util_pct) = 0;

  /// Records `value` for an arbitrary metric under "all" + `dimensions`.
  virtual void record(std::string_view metric, double value,
                      std::span<const std::string> dimensions) = 0;
};

/// metric name -> dimension key -> aggregate.
struct HealthSnapshot {
  std::map<std::string, std::map<std::string, AggregateStats>> metrics;
  WindowedRate::Stats test_rate;
  std::uint64_t tests = 0;

  /// The aggregate for (metric, dimension), or nullptr.
  [[nodiscard]] const AggregateStats* find(std::string_view metric,
                                           std::string_view dimension) const;
};

/// Canonical metric names — the four §5 operational signals.
inline constexpr const char* kMetricDuration = "duration_s";
inline constexpr const char* kMetricDataUsage = "data_mb";
inline constexpr const char* kMetricDeviation = "deviation";
inline constexpr const char* kMetricEgressUtil = "egress_util";

class HealthMonitor final : public HealthSink {
 public:
  explicit HealthMonitor(double rate_window_seconds = 10.0);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void note_arrival(double t_seconds) override;
  void record_test(const TestSample& sample) override;
  void record_egress_utilization(std::uint64_t server, double util_pct) override;
  void record(std::string_view metric, double value,
              std::span<const std::string> dimensions = {}) override;

  [[nodiscard]] HealthSnapshot snapshot() const;

 private:
  std::map<std::string, std::map<std::string, StreamingAggregate>> cells_;
  WindowedRate arrivals_;
  std::uint64_t tests_ = 0;
};

}  // namespace swiftest::obs::health
