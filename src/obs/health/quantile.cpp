#include "obs/health/quantile.hpp"

#include <algorithm>
#include <cmath>

namespace swiftest::obs::health {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  // The P² parabolic prediction of marker i's height after moving d (±1).
  return heights_[static_cast<std::size_t>(i)] +
         d / (positions_[static_cast<std::size_t>(i + 1)] -
              positions_[static_cast<std::size_t>(i - 1)]) *
             ((positions_[static_cast<std::size_t>(i)] -
               positions_[static_cast<std::size_t>(i - 1)] + d) *
                  (heights_[static_cast<std::size_t>(i + 1)] -
                   heights_[static_cast<std::size_t>(i)]) /
                  (positions_[static_cast<std::size_t>(i + 1)] -
                   positions_[static_cast<std::size_t>(i)]) +
              (positions_[static_cast<std::size_t>(i + 1)] -
               positions_[static_cast<std::size_t>(i)] - d) *
                  (heights_[static_cast<std::size_t>(i)] -
                   heights_[static_cast<std::size_t>(i - 1)]) /
                  (positions_[static_cast<std::size_t>(i)] -
                   positions_[static_cast<std::size_t>(i - 1)]));
}

double P2Quantile::linear(int i, double d) const {
  const auto idx = static_cast<std::size_t>(i);
  const auto next = static_cast<std::size_t>(i + static_cast<int>(d));
  return heights_[idx] +
         d * (heights_[next] - heights_[idx]) / (positions_[next] - positions_[idx]);
}

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() + static_cast<long>(count_));
    if (count_ == 5) {
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * increment_[i];
      }
    }
    return;
  }
  ++count_;

  // Find the cell the observation falls into, stretching the extremes.
  std::size_t cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (std::size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double gap = desired_[idx] - positions_[idx];
    if ((gap >= 1.0 && positions_[idx + 1] - positions_[idx] > 1.0) ||
        (gap <= -1.0 && positions_[idx - 1] - positions_[idx] < -1.0)) {
      const double d = gap >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, d);
      if (candidate <= heights_[idx - 1] || candidate >= heights_[idx + 1]) {
        candidate = linear(i, d);
      }
      heights_[idx] = candidate;
      positions_[idx] += d;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact interpolated quantile of the sorted prefix.
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

}  // namespace swiftest::obs::health
