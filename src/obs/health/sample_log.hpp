// Buffering health sink for sharded runs.
//
// A sharded simulation cannot stream health observations into one
// HealthMonitor concurrently (the P² cells are order-sensitive and not
// mergeable), so each shard writes to its own SampleLog — a verbatim,
// insertion-ordered buffer of every sink call — and the merge stage replays
// the logs into the real monitor after the shards join:
//
//   * arrival times from all shards are k-way merged by sim time (stable in
//     shard order for ties) so the windowed test-rate sees one globally
//     time-ordered arrival stream, exactly as an unsharded run would;
//   * the remaining samples replay shard by shard, in shard order, which is
//     deterministic and independent of how shards were scheduled onto
//     threads.
//
// Replaying a single log into a fresh monitor reproduces the unsharded
// monitor state exactly: arrivals and samples touch disjoint monitor state,
// and each log preserves its shard's call order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/health/monitor.hpp"

namespace swiftest::obs::health {

// A log is bounded: at most `capacity` buffered samples and `capacity`
// buffered arrivals (kDefaultCapacity = 4M each, far above any tier-1 run
// but a hard ceiling for fleet-scale days). Overflow policy is drop-newest:
// the buffered prefix replays verbatim — exactly what an unbounded log
// would have replayed first — and everything past the cap is counted in
// dropped() so the merge stage can surface the loss instead of OOMing.
class SampleLog final : public HealthSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 22;

  explicit SampleLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void note_arrival(double t_seconds) override {
    if (arrivals_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    arrivals_.push_back(t_seconds);
  }
  void record_test(const TestSample& sample) override;
  void record_egress_utilization(std::uint64_t server, double util_pct) override;
  void record(std::string_view metric, double value,
              std::span<const std::string> dimensions) override;

  /// Arrival times in the order they were noted (non-decreasing within one
  /// shard's log).
  [[nodiscard]] const std::vector<double>& arrival_times() const noexcept {
    return arrivals_;
  }

  /// Replays every buffered sample except arrivals into `sink`, preserving
  /// insertion order. Arrivals are replayed separately (merge_arrivals) so
  /// multiple shards' clocks stay globally monotone.
  void replay_samples(HealthSink& sink) const;

  [[nodiscard]] std::size_t sample_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Arrivals plus samples refused because the log was at capacity.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Rough in-memory footprint (for budget accounting): buffer capacity
  /// only; per-entry string payloads are not walked.
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept;

  /// Merges the arrival streams of `logs` by time — stable, so ties keep
  /// shard order — and feeds them into `sink`.
  static void merge_arrivals(std::span<const SampleLog* const> logs,
                             HealthSink& sink);

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kTest, kEgress, kRecord };
    Kind kind = Kind::kTest;
    double duration_s = 0.0;            // kTest
    double data_mb = 0.0;               // kTest
    double deviation = 0.0;             // kTest
    std::uint64_t server = 0;           // kEgress
    double value = 0.0;                 // kEgress / kRecord
    std::string metric;                 // kRecord
    std::vector<std::string> dimensions;  // kTest / kRecord
  };

  /// True when another entry fits; counts the drop otherwise.
  bool admit_entry() {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    return true;
  }

  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<double> arrivals_;
  std::vector<Entry> entries_;
};

}  // namespace swiftest::obs::health
