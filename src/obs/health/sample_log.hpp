// Buffering health sink for sharded runs.
//
// A sharded simulation cannot stream health observations into one
// HealthMonitor concurrently (the P² cells are order-sensitive and not
// mergeable), so each shard writes to its own SampleLog — a verbatim,
// insertion-ordered buffer of every sink call — and the merge stage replays
// the logs into the real monitor after the shards join:
//
//   * arrival times from all shards are k-way merged by sim time (stable in
//     shard order for ties) so the windowed test-rate sees one globally
//     time-ordered arrival stream, exactly as an unsharded run would;
//   * the remaining samples replay shard by shard, in shard order, which is
//     deterministic and independent of how shards were scheduled onto
//     threads.
//
// Replaying a single log into a fresh monitor reproduces the unsharded
// monitor state exactly: arrivals and samples touch disjoint monitor state,
// and each log preserves its shard's call order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/health/monitor.hpp"

namespace swiftest::obs::health {

class SampleLog final : public HealthSink {
 public:
  void note_arrival(double t_seconds) override { arrivals_.push_back(t_seconds); }
  void record_test(const TestSample& sample) override;
  void record_egress_utilization(std::uint64_t server, double util_pct) override;
  void record(std::string_view metric, double value,
              std::span<const std::string> dimensions) override;

  /// Arrival times in the order they were noted (non-decreasing within one
  /// shard's log).
  [[nodiscard]] const std::vector<double>& arrival_times() const noexcept {
    return arrivals_;
  }

  /// Replays every buffered sample except arrivals into `sink`, preserving
  /// insertion order. Arrivals are replayed separately (merge_arrivals) so
  /// multiple shards' clocks stay globally monotone.
  void replay_samples(HealthSink& sink) const;

  [[nodiscard]] std::size_t sample_count() const noexcept { return entries_.size(); }

  /// Merges the arrival streams of `logs` by time — stable, so ties keep
  /// shard order — and feeds them into `sink`.
  static void merge_arrivals(std::span<const SampleLog* const> logs,
                             HealthSink& sink);

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kTest, kEgress, kRecord };
    Kind kind = Kind::kTest;
    double duration_s = 0.0;            // kTest
    double data_mb = 0.0;               // kTest
    double deviation = 0.0;             // kTest
    std::uint64_t server = 0;           // kEgress
    double value = 0.0;                 // kEgress / kRecord
    std::string metric;                 // kRecord
    std::vector<std::string> dimensions;  // kTest / kRecord
  };

  std::vector<double> arrivals_;
  std::vector<Entry> entries_;
};

}  // namespace swiftest::obs::health
