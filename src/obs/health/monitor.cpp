#include "obs/health/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace swiftest::obs::health {

void StreamingAggregate::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  p50_.observe(v);
  p95_.observe(v);
  p99_.observe(v);
}

AggregateStats StreamingAggregate::stats() const {
  AggregateStats s;
  s.count = count_;
  s.sum = sum_;
  s.mean = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  s.min = min_;
  s.max = max_;
  s.p50 = p50_.value();
  s.p95 = p95_.value();
  s.p99 = p99_.value();
  return s;
}

WindowedRate::WindowedRate(double window_seconds)
    : window_seconds_(window_seconds > 0.0 ? window_seconds : 1.0) {}

void WindowedRate::note(double t_seconds) {
  const auto window = static_cast<std::int64_t>(std::floor(t_seconds / window_seconds_));
  if (current_window_ < 0) {
    current_window_ = window;
  } else if (window > current_window_) {
    max_per_window_ = std::max(max_per_window_, static_cast<double>(current_count_));
    // Windows between the last event and this one were empty but elapsed.
    closed_windows_ += static_cast<std::uint64_t>(window - current_window_);
    current_window_ = window;
    current_count_ = 0;
  }
  ++current_count_;
  ++events_;
}

WindowedRate::Stats WindowedRate::stats() const {
  Stats s;
  s.window_seconds = window_seconds_;
  s.events = events_;
  s.windows = closed_windows_ + (current_window_ >= 0 ? 1 : 0);
  s.max_per_window =
      std::max(max_per_window_, static_cast<double>(current_count_));
  s.mean_per_window =
      s.windows == 0 ? 0.0
                     : static_cast<double>(events_) / static_cast<double>(s.windows);
  return s;
}

const AggregateStats* HealthSnapshot::find(std::string_view metric,
                                           std::string_view dimension) const {
  const auto m = metrics.find(std::string(metric));
  if (m == metrics.end()) return nullptr;
  const auto d = m->second.find(std::string(dimension));
  return d == m->second.end() ? nullptr : &d->second;
}

HealthMonitor::HealthMonitor(double rate_window_seconds)
    : arrivals_(rate_window_seconds) {}

void HealthMonitor::note_arrival(double t_seconds) { arrivals_.note(t_seconds); }

void HealthMonitor::record(std::string_view metric, double value,
                           std::span<const std::string> dimensions) {
  auto& by_dim = cells_[std::string(metric)];
  by_dim["all"].observe(value);
  for (const std::string& dim : dimensions) {
    if (!dim.empty()) by_dim[dim].observe(value);
  }
}

void HealthMonitor::record_test(const TestSample& sample) {
  ++tests_;
  record(kMetricDuration, sample.duration_s, sample.dimensions);
  record(kMetricDataUsage, sample.data_mb, sample.dimensions);
  record(kMetricDeviation, sample.deviation, sample.dimensions);
}

void HealthMonitor::record_egress_utilization(std::uint64_t server,
                                              double util_pct) {
  std::string key = "server:";
  key += std::to_string(server);
  const std::string dims[] = {std::move(key)};
  record(kMetricEgressUtil, util_pct, dims);
}

HealthSnapshot HealthMonitor::snapshot() const {
  HealthSnapshot snap;
  for (const auto& [metric, by_dim] : cells_) {
    auto& out = snap.metrics[metric];
    for (const auto& [dim, agg] : by_dim) out[dim] = agg.stats();
  }
  snap.test_rate = arrivals_.stats();
  snap.tests = tests_;
  return snap;
}

}  // namespace swiftest::obs::health
