// Deterministic run reports over a health snapshot.
//
// Same discipline as obs/export: map iteration order and std::to_chars
// rendering make two same-seed runs produce byte-identical files. The JSON
// report is the machine-readable artifact CI diffs and gates on; the
// markdown report renders the paper's §5 headline table (duration, data
// usage, deviation, egress utilization — p50/p95/p99 per dimension) for
// humans. Wall-clock self-profiling never appears here: it is host-time and
// would break byte-stability (see obs/prof.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/health/monitor.hpp"
#include "obs/health/slo.hpp"

namespace swiftest::obs::health {

/// Free-form run identity rendered into the report header ("command",
/// "seed", "backend", ...). Order is preserved as given.
using ReportMeta = std::vector<std::pair<std::string, std::string>>;

/// {"meta": {...}, "tests": N, "test_rate": {...},
///  "metrics": {metric: {dimension: {count,mean,...,p50,p95,p99}}},
///  "slo": {"evaluated": N, "violations": N, "results": [...]}}.
/// `evaluation` may be null (no "slo" section).
void write_health_json(const HealthSnapshot& snapshot, const ReportMeta& meta,
                       const SloEvaluation* evaluation, std::ostream& out);

/// Human-readable markdown: header, headline per-dimension table for the
/// four §5 signals, and an SLO section when an evaluation is supplied.
void write_health_markdown(const HealthSnapshot& snapshot, const ReportMeta& meta,
                           const SloEvaluation* evaluation, std::ostream& out);

[[nodiscard]] const char* to_string(SloStatus status) noexcept;

}  // namespace swiftest::obs::health
