// Deterministic run reports over a health snapshot.
//
// Same discipline as obs/export: map iteration order and std::to_chars
// rendering make two same-seed runs produce byte-identical files. The JSON
// report is the machine-readable artifact CI diffs and gates on; the
// markdown report renders the paper's §5 headline table (duration, data
// usage, deviation, egress utilization — p50/p95/p99 per dimension) for
// humans. Wall-clock self-profiling never appears here: it is host-time and
// would break byte-stability (see obs/prof.hpp).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/health/monitor.hpp"
#include "obs/health/slo.hpp"

namespace swiftest::obs::health {

/// Free-form run identity rendered into the report header ("command",
/// "seed", "backend", ...). Order is preserved as given.
using ReportMeta = std::vector<std::pair<std::string, std::string>>;

/// {"meta": {...}, "tests": N, "test_rate": {...},
///  "metrics": {metric: {dimension: {count,mean,...,p50,p95,p99}}},
///  "slo": {"evaluated": N, "violations": N, "results": [...]}}.
/// `evaluation` may be null (no "slo" section).
void write_health_json(const HealthSnapshot& snapshot, const ReportMeta& meta,
                       const SloEvaluation* evaluation, std::ostream& out);

/// Human-readable markdown: header, headline per-dimension table for the
/// four §5 signals, and an SLO section when an evaluation is supplied.
void write_health_markdown(const HealthSnapshot& snapshot, const ReportMeta& meta,
                           const SloEvaluation* evaluation, std::ostream& out);

[[nodiscard]] const char* to_string(SloStatus status) noexcept;

/// A health JSON artifact read back from disk: what `obs diff` works on when
/// comparing per-dimension quantile drift between two runs.
struct HealthArtifact {
  ReportMeta meta;  // key-ordered as parsed
  std::uint64_t tests = 0;
  /// metric -> dimension -> stats, same shape as HealthSnapshot::metrics.
  std::map<std::string, std::map<std::string, AggregateStats>> metrics;
};

/// Parses a --health-out document. Returns nullopt (with a reason in
/// `error`) on malformed JSON or a document without a "metrics" object.
[[nodiscard]] std::optional<HealthArtifact> parse_health_json(
    std::string_view text, std::string* error = nullptr);

/// Loads and parses a health artifact from disk.
[[nodiscard]] std::optional<HealthArtifact> load_health_file(
    const std::string& path, std::string* error = nullptr);

/// Manifest summary: tests plus the "all"-cell count/mean/p99 of every
/// metric ("duration_s.count", "duration_s.p99", ...). Name-ordered.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const HealthSnapshot& snapshot);

}  // namespace swiftest::obs::health
