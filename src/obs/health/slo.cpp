#include "obs/health/slo.hpp"

#include <fstream>
#include <sstream>

#include "obs/health/json.hpp"

namespace swiftest::obs::health {

std::size_t SloEvaluation::violations() const {
  std::size_t n = 0;
  for (const SloResult& r : results) {
    if (r.status == SloStatus::kViolated) ++n;
  }
  return n;
}

std::optional<double> stat_value(const AggregateStats& stats,
                                 std::string_view stat) {
  if (stat == "mean") return stats.mean;
  if (stat == "min") return stats.min;
  if (stat == "max") return stats.max;
  if (stat == "p50" || stat == "median") return stats.p50;
  if (stat == "p95") return stats.p95;
  if (stat == "p99") return stats.p99;
  if (stat == "count") return static_cast<double>(stats.count);
  if (stat == "sum") return stats.sum;
  return std::nullopt;
}

std::optional<std::vector<SloSpec>> parse_slo_specs(std::string_view json_text,
                                                    std::string* error) {
  const auto doc = parse_json(json_text, error);
  if (!doc) return std::nullopt;
  const JsonValue* slos = doc->get("slos");
  if (slos == nullptr || !slos->is_array()) {
    if (error != nullptr) *error = "spec must be an object with an \"slos\" array";
    return std::nullopt;
  }
  std::vector<SloSpec> specs;
  for (std::size_t i = 0; i < slos->as_array().size(); ++i) {
    const JsonValue& entry = slos->as_array()[i];
    SloSpec spec;
    spec.name = entry.get_string("name", "");
    spec.metric = entry.get_string("metric", "");
    spec.stat = entry.get_string("stat", "p95");
    spec.dimension = entry.get_string("dimension", "all");
    if (const JsonValue* v = entry.get("max");
        v != nullptr && v->type() == JsonValue::Type::kNumber) {
      spec.max_value = v->as_number();
    }
    if (const JsonValue* v = entry.get("min");
        v != nullptr && v->type() == JsonValue::Type::kNumber) {
      spec.min_value = v->as_number();
    }
    spec.min_samples =
        static_cast<std::uint64_t>(entry.get_number("min_samples", 1.0));
    if (spec.name.empty() || spec.metric.empty() ||
        (!spec.max_value && !spec.min_value)) {
      if (error != nullptr) {
        *error = "slo #" + std::to_string(i) +
                 " needs \"name\", \"metric\", and \"max\" or \"min\"";
      }
      return std::nullopt;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::optional<std::vector<SloSpec>> load_slo_file(const std::string& path,
                                                  std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_slo_specs(text.str(), error);
}

namespace {

SloResult evaluate_cell(const SloSpec& spec, const std::string& dimension,
                        const AggregateStats& stats) {
  SloResult result;
  result.spec = spec;
  result.dimension = dimension;
  result.samples = stats.count;
  const auto value = stat_value(stats, spec.stat);
  if (!value) {
    result.status = SloStatus::kViolated;  // unknown stat never silently passes
    return result;
  }
  result.observed = *value;
  if (stats.count < spec.min_samples) {
    result.status = SloStatus::kSkipped;
    return result;
  }
  const bool over = spec.max_value && *value > *spec.max_value;
  const bool under = spec.min_value && *value < *spec.min_value;
  result.status = over || under ? SloStatus::kViolated : SloStatus::kPass;
  return result;
}

}  // namespace

SloEvaluation evaluate_slos(const std::vector<SloSpec>& specs,
                            const HealthSnapshot& snapshot) {
  SloEvaluation evaluation;
  for (const SloSpec& spec : specs) {
    const auto metric = snapshot.metrics.find(spec.metric);
    if (metric == snapshot.metrics.end()) {
      SloResult missing;
      missing.spec = spec;
      missing.dimension = spec.dimension;
      missing.status = SloStatus::kViolated;
      evaluation.results.push_back(std::move(missing));
      continue;
    }
    const auto& cells = metric->second;
    if (spec.dimension.size() >= 2 && spec.dimension.back() == '*') {
      const std::string_view prefix =
          std::string_view(spec.dimension).substr(0, spec.dimension.size() - 1);
      bool any = false;
      for (const auto& [dim, stats] : cells) {
        if (dim.rfind(prefix, 0) != 0) continue;
        any = true;
        evaluation.results.push_back(evaluate_cell(spec, dim, stats));
      }
      if (!any) {
        SloResult missing;
        missing.spec = spec;
        missing.dimension = spec.dimension;
        missing.status = SloStatus::kViolated;
        evaluation.results.push_back(std::move(missing));
      }
      continue;
    }
    const auto cell = cells.find(spec.dimension);
    if (cell == cells.end()) {
      SloResult missing;
      missing.spec = spec;
      missing.dimension = spec.dimension;
      missing.status = SloStatus::kViolated;
      evaluation.results.push_back(std::move(missing));
      continue;
    }
    evaluation.results.push_back(evaluate_cell(spec, cell->first, cell->second));
  }
  return evaluation;
}

}  // namespace swiftest::obs::health
