// Minimal JSON reader for declarative health/SLO specs and the obs artifact
// loaders (span documents, manifests, diff inputs).
//
// A deliberately small recursive-descent parser: objects, arrays, strings,
// numbers, booleans, null. It exists so spec and artifact files can be plain
// JSON without pulling a dependency into the tree. Semantics the loaders
// rely on (covered by tests/obs/json_util_test.cpp):
//   * duplicate object keys: last value wins;
//   * \uXXXX escapes decode to UTF-8, surrogate pairs included; a lone
//     surrogate decodes to U+FFFD (replacement) instead of failing, so a
//     damaged artifact degrades rather than becoming unreadable;
//   * nesting beyond kMaxJsonDepth is rejected (a hostile or corrupt
//     document cannot overflow the parse stack);
//   * integer tokens keep their raw text, so as_u64() is exact over the
//     full u64 range (2^63 and friends round-trip bit-for-bit).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swiftest::obs::health {

/// Maximum object/array nesting the parser accepts. Deep enough for any
/// artifact this tree writes (they nest < 10 levels), small enough that a
/// pathological document cannot exhaust the recursion stack.
inline constexpr int kMaxJsonDepth = 192;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  /// Exact unsigned 64-bit read: doubles carry 53 mantissa bits, so ids above
  /// 2^53 (trace nonces) must be re-parsed from the raw number token.
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? number_ != 0.0 : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const { return array_; }

  /// Object member by key, or nullptr.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
  /// All object members, key-ordered (empty for non-objects).
  [[nodiscard]] const std::map<std::string, JsonValue>& members() const noexcept {
    return object_;
  }
  /// Convenience accessors with fallbacks for absent/mistyped members.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  double number_ = 0.0;  // doubles as bool storage
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document. Returns nullopt (with a position/reason in
/// `error`, when provided) on malformed input or trailing garbage.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace swiftest::obs::health
