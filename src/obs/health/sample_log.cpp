#include "obs/health/sample_log.hpp"

#include <algorithm>

namespace swiftest::obs::health {

std::uint64_t SampleLog::approx_bytes() const noexcept {
  return arrivals_.capacity() * sizeof(double) +
         entries_.capacity() * sizeof(Entry);
}

void SampleLog::record_test(const TestSample& sample) {
  if (!admit_entry()) return;
  Entry e;
  e.kind = Entry::Kind::kTest;
  e.duration_s = sample.duration_s;
  e.data_mb = sample.data_mb;
  e.deviation = sample.deviation;
  e.dimensions.assign(sample.dimensions.begin(), sample.dimensions.end());
  entries_.push_back(std::move(e));
}

void SampleLog::record_egress_utilization(std::uint64_t server, double util_pct) {
  if (!admit_entry()) return;
  Entry e;
  e.kind = Entry::Kind::kEgress;
  e.server = server;
  e.value = util_pct;
  entries_.push_back(std::move(e));
}

void SampleLog::record(std::string_view metric, double value,
                       std::span<const std::string> dimensions) {
  if (!admit_entry()) return;
  Entry e;
  e.kind = Entry::Kind::kRecord;
  e.metric = std::string(metric);
  e.value = value;
  e.dimensions.assign(dimensions.begin(), dimensions.end());
  entries_.push_back(std::move(e));
}

void SampleLog::replay_samples(HealthSink& sink) const {
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Entry::Kind::kTest: {
        TestSample sample;
        sample.duration_s = e.duration_s;
        sample.data_mb = e.data_mb;
        sample.deviation = e.deviation;
        sample.dimensions = e.dimensions;
        sink.record_test(sample);
        break;
      }
      case Entry::Kind::kEgress:
        sink.record_egress_utilization(e.server, e.value);
        break;
      case Entry::Kind::kRecord:
        sink.record(e.metric, e.value, e.dimensions);
        break;
    }
  }
}

void SampleLog::merge_arrivals(std::span<const SampleLog* const> logs,
                               HealthSink& sink) {
  std::size_t total = 0;
  for (const SampleLog* log : logs) {
    if (log != nullptr) total += log->arrivals_.size();
  }
  std::vector<double> merged;
  merged.reserve(total);
  for (const SampleLog* log : logs) {
    if (log != nullptr) {
      merged.insert(merged.end(), log->arrivals_.begin(), log->arrivals_.end());
    }
  }
  // Each shard's stream is already non-decreasing; a stable sort makes the
  // union globally monotone while keeping shard order for equal times.
  std::stable_sort(merged.begin(), merged.end());
  for (double t : merged) sink.note_arrival(t);
}

}  // namespace swiftest::obs::health
