#include "obs/health/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/health/json.hpp"
#include "obs/json_util.hpp"

namespace swiftest::obs::health {

const char* to_string(SloStatus status) noexcept {
  switch (status) {
    case SloStatus::kPass:
      return "pass";
    case SloStatus::kSkipped:
      return "skipped";
    case SloStatus::kViolated:
      return "violated";
  }
  return "unknown";
}

namespace {

void append_aggregate(std::string& out, const AggregateStats& s) {
  out += "{\"count\": ";
  append_u64(out, s.count);
  out += ", \"sum\": ";
  append_double(out, s.sum);
  out += ", \"mean\": ";
  append_double(out, s.mean);
  out += ", \"min\": ";
  append_double(out, s.min);
  out += ", \"max\": ";
  append_double(out, s.max);
  out += ", \"p50\": ";
  append_double(out, s.p50);
  out += ", \"p95\": ";
  append_double(out, s.p95);
  out += ", \"p99\": ";
  append_double(out, s.p99);
  out += "}";
}

/// Fixed two-decimal rendering for the markdown table (humans, not diffs —
/// but snprintf of finite doubles is still deterministic).
std::string fixed(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

void write_health_json(const HealthSnapshot& snapshot, const ReportMeta& meta,
                       const SloEvaluation* evaluation, std::ostream& out) {
  std::string body = "{\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, key);
    body += ": ";
    append_json_string(body, value);
  }
  body += first ? "},\n" : "\n  },\n";

  body += "  \"tests\": ";
  append_u64(body, snapshot.tests);
  body += ",\n  \"test_rate\": {\"window_seconds\": ";
  append_double(body, snapshot.test_rate.window_seconds);
  body += ", \"events\": ";
  append_u64(body, snapshot.test_rate.events);
  body += ", \"windows\": ";
  append_u64(body, snapshot.test_rate.windows);
  body += ", \"mean_per_window\": ";
  append_double(body, snapshot.test_rate.mean_per_window);
  body += ", \"max_per_window\": ";
  append_double(body, snapshot.test_rate.max_per_window);
  body += "},\n  \"metrics\": {";

  first = true;
  for (const auto& [metric, cells] : snapshot.metrics) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, metric);
    body += ": {";
    bool first_cell = true;
    for (const auto& [dim, stats] : cells) {
      body += first_cell ? "\n" : ",\n";
      first_cell = false;
      body += "      ";
      append_json_string(body, dim);
      body += ": ";
      append_aggregate(body, stats);
    }
    body += first_cell ? "}" : "\n    }";
  }
  body += first ? "}" : "\n  }";

  if (evaluation != nullptr) {
    body += ",\n  \"slo\": {\"evaluated\": ";
    append_u64(body, evaluation->results.size());
    body += ", \"violations\": ";
    append_u64(body, evaluation->violations());
    body += ", \"results\": [";
    bool first_result = true;
    for (const SloResult& r : evaluation->results) {
      body += first_result ? "\n" : ",\n";
      first_result = false;
      body += "    {\"name\": ";
      append_json_string(body, r.spec.name);
      body += ", \"metric\": ";
      append_json_string(body, r.spec.metric);
      body += ", \"stat\": ";
      append_json_string(body, r.spec.stat);
      body += ", \"dimension\": ";
      append_json_string(body, r.dimension);
      body += ", \"observed\": ";
      append_double(body, r.observed);
      if (r.spec.max_value) {
        body += ", \"max\": ";
        append_double(body, *r.spec.max_value);
      }
      if (r.spec.min_value) {
        body += ", \"min\": ";
        append_double(body, *r.spec.min_value);
      }
      body += ", \"samples\": ";
      append_u64(body, r.samples);
      body += ", \"status\": ";
      append_json_string(body, to_string(r.status));
      body += "}";
    }
    body += first_result ? "]}" : "\n  ]}";
  }

  body += "\n}\n";
  out << body;
}

void write_health_markdown(const HealthSnapshot& snapshot, const ReportMeta& meta,
                           const SloEvaluation* evaluation, std::ostream& out) {
  std::string body = "# Fleet health report\n\n";
  for (const auto& [key, value] : meta) {
    body += "- **" + key + "**: " + value + "\n";
  }
  body += "- **tests**: " + std::to_string(snapshot.tests) + "\n";
  if (snapshot.test_rate.windows > 0) {
    body += "- **test rate**: " + fixed(snapshot.test_rate.mean_per_window) +
            " per " + fixed(snapshot.test_rate.window_seconds, 0) +
            " s window (max " + fixed(snapshot.test_rate.max_per_window, 0) +
            ")\n";
  }

  body +=
      "\n## Operational signals\n\n"
      "| metric | dimension | n | mean | p50 | p95 | p99 | max |\n"
      "|---|---|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& [metric, cells] : snapshot.metrics) {
    for (const auto& [dim, s] : cells) {
      body += "| " + metric + " | " + dim + " | " + std::to_string(s.count) +
              " | " + fixed(s.mean) + " | " + fixed(s.p50) + " | " +
              fixed(s.p95) + " | " + fixed(s.p99) + " | " + fixed(s.max) +
              " |\n";
    }
  }

  if (evaluation != nullptr) {
    body += "\n## SLO gate\n\n| objective | cell | stat | observed | bound | samples | status |\n"
            "|---|---|---|---:|---|---:|---|\n";
    for (const SloResult& r : evaluation->results) {
      std::string bound;
      if (r.spec.max_value) bound += "<= " + fixed(*r.spec.max_value);
      if (r.spec.min_value) {
        if (!bound.empty()) bound += ", ";
        bound += ">= " + fixed(*r.spec.min_value);
      }
      body += "| " + r.spec.name + " | " + r.dimension + " | " + r.spec.stat +
              " | " + fixed(r.observed) + " | " + bound + " | " +
              std::to_string(r.samples) + " | " + to_string(r.status) + " |\n";
    }
    body += "\n**" + std::to_string(evaluation->violations()) +
            " violation(s) across " + std::to_string(evaluation->results.size()) +
            " evaluated objective(s).**\n";
  }
  out << body;
}

std::optional<HealthArtifact> parse_health_json(std::string_view text,
                                                std::string* error) {
  const auto doc = parse_json(text, error);
  if (!doc) return std::nullopt;
  const JsonValue* metrics = doc->is_object() ? doc->get("metrics") : nullptr;
  if (metrics == nullptr || !metrics->is_object()) {
    if (error != nullptr) {
      *error = "health document must be an object with a \"metrics\" object";
    }
    return std::nullopt;
  }
  HealthArtifact artifact;
  if (const JsonValue* meta = doc->get("meta"); meta != nullptr && meta->is_object()) {
    for (const auto& [key, value] : meta->members()) {
      artifact.meta.emplace_back(key, value.as_string());
    }
  }
  if (const JsonValue* tests = doc->get("tests")) artifact.tests = tests->as_u64(0);
  for (const auto& [metric, cells] : metrics->members()) {
    if (!cells.is_object()) continue;
    auto& dims = artifact.metrics[metric];
    for (const auto& [dim, stats] : cells.members()) {
      if (!stats.is_object()) continue;
      AggregateStats s;
      s.count = stats.get("count") != nullptr ? stats.get("count")->as_u64(0) : 0;
      s.sum = stats.get_number("sum", 0.0);
      s.mean = stats.get_number("mean", 0.0);
      s.min = stats.get_number("min", 0.0);
      s.max = stats.get_number("max", 0.0);
      s.p50 = stats.get_number("p50", 0.0);
      s.p95 = stats.get_number("p95", 0.0);
      s.p99 = stats.get_number("p99", 0.0);
      dims[dim] = s;
    }
  }
  return artifact;
}

std::optional<HealthArtifact> load_health_file(const std::string& path,
                                               std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_health_json(text.str(), error);
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const HealthSnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("tests", static_cast<double>(snapshot.tests));
  for (const auto& [metric, cells] : snapshot.metrics) {
    const auto it = cells.find("all");
    if (it == cells.end()) continue;
    out.emplace_back(metric + ".count", static_cast<double>(it->second.count));
    out.emplace_back(metric + ".mean", it->second.mean);
    out.emplace_back(metric + ".p99", it->second.p99);
  }
  return out;
}

}  // namespace swiftest::obs::health
