// Streaming quantile estimation for the health layer.
//
// P2Quantile is the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track one quantile of an unbounded stream in O(1) memory, no samples
// retained. The estimate is deterministic for a given observation sequence,
// which keeps health reports byte-identical across same-seed runs. Until the
// fifth observation the exact (interpolated) quantile of the seen values is
// returned.
#pragma once

#include <array>
#include <cstdint>

namespace swiftest::obs::health {

class P2Quantile {
 public:
  /// `q` in (0, 1): the quantile to track (0.5 = median).
  explicit P2Quantile(double q);

  void observe(double x);

  /// Current estimate; 0 before any observation.
  [[nodiscard]] double value() const;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (sorted)
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increment_{};  // desired-position increments
};

}  // namespace swiftest::obs::health
