#include "obs/health/json.hpp"

#include <cctype>
#include <charconv>

namespace swiftest::obs::health {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type() == Type::kString ? v->string_
                                                    : std::string(fallback);
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type() == Type::kNumber ? v->number_ : fallback;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  std::uint64_t v = 0;
  const char* begin = string_.data();
  const char* end = begin + string_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec == std::errc() && ptr == end) return v;
  // Not a plain non-negative integer token (sign, fraction, exponent):
  // the double value is the best available reading.
  return number_ >= 0.0 ? static_cast<std::uint64_t>(number_) : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  /// RAII depth guard: containers nest at most kMaxJsonDepth levels.
  class DepthScope {
   public:
    explicit DepthScope(JsonParser& parser) : parser_(parser) { ++parser_.depth_; }
    ~DepthScope() { --parser_.depth_; }
    [[nodiscard]] bool ok() const { return parser_.depth_ <= kMaxJsonDepth; }

   private:
    JsonParser& parser_;
  };

  bool parse_object(JsonValue& out) {
    const DepthScope depth(*this);
    if (!depth.ok()) return fail("nesting deeper than kMaxJsonDepth");
    if (!consume('{')) return false;
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object_[key.string_] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    const DepthScope depth(*this);
    if (!depth.ok()) return fail("nesting deeper than kMaxJsonDepth");
    if (!consume('[')) return false;
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(JsonValue& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.type_ = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.string_ += '"'; break;
          case '\\': out.string_ += '\\'; break;
          case '/': out.string_ += '/'; break;
          case 'n': out.string_ += '\n'; break;
          case 't': out.string_ += '\t'; break;
          case 'r': out.string_ += '\r'; break;
          case 'b': out.string_ += '\b'; break;
          case 'f': out.string_ += '\f'; break;
          case 'u': {
            if (!parse_unicode_escape(out.string_)) return false;
            break;
          }
          default: return fail("unsupported escape");
        }
      } else {
        out.string_ += c;
      }
    }
    return fail("unterminated string");
  }

  /// Reads the four hex digits after "\u"; nullopt on malformed hex.
  std::optional<std::uint32_t> read_hex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    pos_ += 4;
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  /// Decodes one \uXXXX escape (pos_ is just past the 'u'). A high surrogate
  /// followed by a \uXXXX low surrogate combines into one code point; a lone
  /// surrogate — unpaired high, or a low with no preceding high — decodes to
  /// U+FFFD so damaged artifacts stay loadable.
  bool parse_unicode_escape(std::string& out) {
    static constexpr std::uint32_t kReplacement = 0xfffd;
    const auto first = read_hex4();
    if (!first) return fail("bad \\u escape");
    std::uint32_t cp = *first;
    if (cp >= 0xdc00 && cp <= 0xdfff) {
      cp = kReplacement;  // lone low surrogate
    } else if (cp >= 0xd800 && cp <= 0xdbff) {
      // High surrogate: consume the paired \uXXXX if present and valid.
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        const std::size_t rewind = pos_;
        pos_ += 2;
        const auto second = read_hex4();
        if (!second) return fail("bad \\u escape");
        if (*second >= 0xdc00 && *second <= 0xdfff) {
          cp = 0x10000 + ((cp - 0xd800) << 10) + (*second - 0xdc00);
        } else {
          // Not a low surrogate: the first escape was lone; re-parse the
          // second one on the next loop iteration.
          cp = kReplacement;
          pos_ = rewind;
        }
      } else {
        cp = kReplacement;  // lone high surrogate at end / before other text
      }
    }
    append_utf8(out, cp);
    return true;
  }

  bool parse_bool(JsonValue& out) {
    if (text_.substr(pos_, 4) == "true") {
      out.type_ = JsonValue::Type::kBool;
      out.number_ = 1.0;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.type_ = JsonValue::Type::kBool;
      out.number_ = 0.0;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    if (text_.substr(pos_, 4) == "null") {
      out.type_ = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr == begin) return fail("bad number");
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = v;
    // Keep the raw token so 64-bit integers (trace ids) survive exactly:
    // a double holds only 53 mantissa bits.
    out.string_.assign(begin, static_cast<std::size_t>(ptr - begin));
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace swiftest::obs::health
