#include "obs/health/json.hpp"

#include <cctype>
#include <charconv>

namespace swiftest::obs::health {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type() == Type::kString ? v->string_
                                                    : std::string(fallback);
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->type() == Type::kNumber ? v->number_ : fallback;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  std::uint64_t v = 0;
  const char* begin = string_.data();
  const char* end = begin + string_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec == std::errc() && ptr == end) return v;
  // Not a plain non-negative integer token (sign, fraction, exponent):
  // the double value is the best available reading.
  return number_ >= 0.0 ? static_cast<std::uint64_t>(number_) : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object_[key.string_] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(JsonValue& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.type_ = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.string_ += '"'; break;
          case '\\': out.string_ += '\\'; break;
          case '/': out.string_ += '/'; break;
          case 'n': out.string_ += '\n'; break;
          case 't': out.string_ += '\t'; break;
          case 'r': out.string_ += '\r'; break;
          case 'b': out.string_ += '\b'; break;
          case 'f': out.string_ += '\f'; break;
          default: return fail("unsupported escape");
        }
      } else {
        out.string_ += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    if (text_.substr(pos_, 4) == "true") {
      out.type_ = JsonValue::Type::kBool;
      out.number_ = 1.0;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.type_ = JsonValue::Type::kBool;
      out.number_ = 0.0;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    if (text_.substr(pos_, 4) == "null") {
      out.type_ = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr == begin) return fail("bad number");
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = v;
    // Keep the raw token so 64-bit integers (trace ids) survive exactly:
    // a double holds only 53 mantissa bits.
    out.string_.assign(begin, static_cast<std::size_t>(ptr - begin));
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace swiftest::obs::health
