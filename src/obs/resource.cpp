#include "obs/resource.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

namespace swiftest::obs {
namespace {

double page_size_mb() {
  static const double mb =
      static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
  return mb;
}

/// VmHWM from /proc/self/status, in MB; 0 when unavailable.
double read_vm_hwm_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    double kb = 0.0;
    fields >> kb;
    return kb / 1024.0;
  }
  return 0.0;
}

std::string format_mb(double mb) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", mb);
  return buf;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

}  // namespace

ResourceUsage read_resource_usage() {
  ResourceUsage usage;
  std::ifstream statm("/proc/self/statm");
  if (statm) {
    std::uint64_t total_pages = 0;
    std::uint64_t resident_pages = 0;
    statm >> total_pages >> resident_pages;
    usage.rss_mb = static_cast<double>(resident_pages) * page_size_mb();
  }
  usage.peak_rss_mb = read_vm_hwm_mb();
  if (usage.peak_rss_mb < usage.rss_mb) usage.peak_rss_mb = usage.rss_mb;
  return usage;
}

void ResourceMonitor::begin_run(std::size_t shard_count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  shard_count_ = shard_count;
  tests_done_.store(0, std::memory_order_relaxed);
  shards_done_.store(0, std::memory_order_relaxed);
  total_wall_seconds_ = 0.0;
  peak_rss_mb_ = 0.0;
  shards_.clear();
}

ResourceUsage ResourceMonitor::sample_usage() {
  const ResourceUsage usage = read_resource_usage();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (usage.peak_rss_mb > peak_rss_mb_) peak_rss_mb_ = usage.peak_rss_mb;
  return usage;
}

std::string ResourceMonitor::progress_line() {
  const ResourceUsage usage = sample_usage();
  std::size_t shard_count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shard_count = shard_count_;
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "fleet: %llu tests | shards %llu/%zu | rss %.1f MB (peak %.1f)",
                static_cast<unsigned long long>(tests_done()),
                static_cast<unsigned long long>(shards_done()), shard_count,
                usage.rss_mb, usage.peak_rss_mb);
  return buf;
}

void ResourceMonitor::record_shard(const ShardTelemetry& telemetry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(telemetry);
}

void ResourceMonitor::finish_run(double wall_seconds) {
  sample_usage();
  const std::lock_guard<std::mutex> lock(mutex_);
  total_wall_seconds_ = wall_seconds;
}

std::vector<ShardTelemetry> ResourceMonitor::shard_telemetry() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shards_;
}

double ResourceMonitor::peak_rss_mb() {
  sample_usage();
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_rss_mb_;
}

ShardTelemetry ResourceMonitor::totals_locked() const {
  ShardTelemetry total;
  for (const ShardTelemetry& t : shards_) {
    total.tests += t.tests;
    total.events_executed += t.events_executed;
    total.slab_slots += t.slab_slots;
    total.callback_heap_fallbacks += t.callback_heap_fallbacks;
    total.payload_nodes += t.payload_nodes;
    total.payload_heap_spills += t.payload_heap_spills;
    total.transit_nodes += t.transit_nodes;
    total.transit_peak_live += t.transit_peak_live;
    total.calendar_sweeps += t.calendar_sweeps;
    total.calendar_rebases += t.calendar_rebases;
    total.calendar_far_pushes += t.calendar_far_pushes;
    total.trace_dropped += t.trace_dropped;
    total.trace_spilled += t.trace_spilled;
    total.span_dropped += t.span_dropped;
    total.span_spilled += t.span_spilled;
    total.health_dropped += t.health_dropped;
    total.sample_degradations += t.sample_degradations;
  }
  return total;
}

void ResourceMonitor::export_metrics(MetricsRegistry& metrics) const {
  ShardTelemetry total;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    total = totals_locked();
  }
  const auto put = [&metrics](const char* name, std::uint64_t value) {
    if (value > 0) metrics.counter(name).inc(value);
  };
  put("obs.resource.slab_slots", total.slab_slots);
  put("obs.resource.callback_heap_fallbacks", total.callback_heap_fallbacks);
  put("obs.resource.payload_nodes", total.payload_nodes);
  put("obs.resource.payload_heap_spills", total.payload_heap_spills);
  put("obs.resource.transit_nodes", total.transit_nodes);
  put("obs.resource.transit_peak_live", total.transit_peak_live);
  put("obs.resource.calendar_sweeps", total.calendar_sweeps);
  put("obs.resource.calendar_rebases", total.calendar_rebases);
  put("obs.resource.calendar_far_pushes", total.calendar_far_pushes);
  // Trace/span drop and spill counts are NOT exported here: the post-merge
  // hub carries them (merge_from sums shard counts) and the CLI surfaces
  // those directly — exporting both would double-count.
  put("obs.health_dropped", total.health_dropped);
  put("obs.sample_degradations", total.sample_degradations);
}

void ResourceMonitor::append_report_meta(health::ReportMeta& meta) {
  sample_usage();
  const std::lock_guard<std::mutex> lock(mutex_);
  const ShardTelemetry total = totals_locked();
  meta.emplace_back("obs.peak_rss_mb", format_mb(peak_rss_mb_));
  meta.emplace_back("obs.wall_s", format_seconds(total_wall_seconds_));
  std::string per_shard;
  for (const ShardTelemetry& t : shards_) {
    if (!per_shard.empty()) per_shard += ",";
    per_shard += format_seconds(t.wall_seconds);
  }
  meta.emplace_back("obs.shard_wall_s", per_shard);
  meta.emplace_back("obs.events_executed", std::to_string(total.events_executed));
  meta.emplace_back("obs.slab_slots", std::to_string(total.slab_slots));
  meta.emplace_back("obs.transit_nodes", std::to_string(total.transit_nodes));
  meta.emplace_back("obs.transit_peak_live",
                    std::to_string(total.transit_peak_live));
  meta.emplace_back("obs.calendar_sweeps", std::to_string(total.calendar_sweeps));
  // Trace/span drop/spill counts are surfaced from the merged hub (the CLI
  // adds only-nonzero meta entries); duplicating them here would produce
  // conflicting keys in the same report.
  meta.emplace_back("obs.health_dropped", std::to_string(total.health_dropped));
  meta.emplace_back("obs.sample_degradations",
                    std::to_string(total.sample_degradations));
}

}  // namespace swiftest::obs
