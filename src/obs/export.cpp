#include "obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/health/json.hpp"
#include "obs/json_util.hpp"

namespace swiftest::obs {
namespace {

/// Chrome's `ts` field is in microseconds; emit ns with fixed millimicro
/// precision ("123.456") so nothing is lost and output stays byte-stable.
void append_ts_us(std::string& out, core::SimTime ns) {
  append_i64(out, ns / 1000);
  const auto frac = static_cast<int>(ns % 1000);
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03d", frac);
  out.append(buf);
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& ev : tracer.events()) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":\"";
    line += ev.name;
    line += "\",\"cat\":\"";
    line += to_string(ev.category);
    line += "\",\"ph\":\"";
    line += ev.kind == EventKind::kCounter ? 'C' : 'i';
    line += "\",\"ts\":";
    append_ts_us(line, ev.ts);
    line += ",\"pid\":1,\"tid\":";
    append_u64(line, ev.id);
    if (ev.kind == EventKind::kCounter) {
      line += ",\"args\":{\"value\":";
      append_double(line, ev.value);
      line += "}}";
    } else {
      line += ",\"s\":\"t\",\"args\":{\"value\":";
      append_double(line, ev.value);
      line += "}}";
    }
    out << line;
  }
  out << "\n]}\n";
}

void append_trace_jsonl_line(std::string& out, const TraceEvent& ev) {
  out += "{\"ts\":";
  append_i64(out, ev.ts);
  out += ",\"cat\":\"";
  out += to_string(ev.category);
  out += "\",\"k\":\"";
  out += ev.kind == EventKind::kCounter ? 'C' : 'i';
  out += "\",\"name\":\"";
  out += ev.name;
  out += "\",\"id\":";
  append_u64(out, ev.id);
  out += ",\"v\":";
  append_double(out, ev.value);
  out += "}\n";
}

void write_trace_jsonl(const Tracer& tracer, std::ostream& out) {
  std::string line;
  for (const TraceEvent& ev : tracer.events()) {
    line.clear();
    append_trace_jsonl_line(line, ev);
    out << line;
  }
}

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::string body = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": ";
    append_u64(body, value);
  }
  body += first ? "},\n" : "\n  },\n";
  body += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": ";
    append_double(body, value);
  }
  body += first ? "},\n" : "\n  },\n";
  body += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": {\"le\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) body += ", ";
      append_double(body, h.bounds[i]);
    }
    body += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) body += ", ";
      append_u64(body, h.counts[i]);
    }
    body += "], \"count\": ";
    append_u64(body, h.count);
    body += ", \"sum\": ";
    append_double(body, h.sum);
    body += "}";
  }
  body += first ? "}\n" : "\n  }\n";
  body += "}\n";
  out << body;
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const Tracer& tracer) {
  std::vector<std::pair<std::string, double>> out;
  std::map<std::string, std::uint64_t> per_category;
  for (const TraceEvent& ev : tracer.events()) {
    ++per_category[to_string(ev.category)];
  }
  out.emplace_back("events", static_cast<double>(tracer.size()));
  out.emplace_back("dropped", static_cast<double>(tracer.dropped()));
  out.emplace_back("spilled", static_cast<double>(tracer.spilled()));
  for (const auto& [cat, count] : per_category) {
    out.emplace_back("cat." + cat, static_cast<double>(count));
  }
  return out;
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const MetricsSnapshot& snapshot) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, value] : snapshot.counters) {
    out.emplace_back("counter." + name, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out.emplace_back("gauge." + name, value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out.emplace_back("hist." + name + ".count", static_cast<double>(h.count));
    out.emplace_back("hist." + name + ".sum", h.sum);
  }
  return out;
}

std::optional<TraceArtifactSummary> parse_trace_jsonl(std::string_view text,
                                                      std::string* error) {
  TraceArtifactSummary summary;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    ++lineno;
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    std::string line_error;
    const auto doc = health::parse_json(line, &line_error);
    if (!doc || !doc->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " +
                 (doc ? "not an event object" : line_error);
      }
      return std::nullopt;
    }
    ++summary.events;
    ++summary.per_category[doc->get_string("cat", "?")];
    ++summary.per_name[doc->get_string("name", "?")];
  }
  return summary;
}

std::optional<TraceArtifactSummary> load_trace_jsonl_file(const std::string& path,
                                                          std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_trace_jsonl(text.str(), error);
}

std::optional<MetricsSnapshot> parse_metrics_json(std::string_view text,
                                                  std::string* error) {
  const auto doc = health::parse_json(text, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    if (error != nullptr) *error = "metrics document must be an object";
    return std::nullopt;
  }
  MetricsSnapshot snapshot;
  if (const health::JsonValue* counters = doc->get("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->members()) {
      snapshot.counters[name] = value.as_u64(0);
    }
  }
  if (const health::JsonValue* gauges = doc->get("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->members()) {
      snapshot.gauges[name] = value.as_number(0.0);
    }
  }
  if (const health::JsonValue* histograms = doc->get("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, value] : histograms->members()) {
      if (!value.is_object()) continue;
      MetricsSnapshot::HistogramValue h;
      if (const health::JsonValue* le = value.get("le");
          le != nullptr && le->is_array()) {
        for (const health::JsonValue& bound : le->as_array()) {
          h.bounds.push_back(bound.as_number(0.0));
        }
      }
      if (const health::JsonValue* counts = value.get("counts");
          counts != nullptr && counts->is_array()) {
        for (const health::JsonValue& count : counts->as_array()) {
          h.counts.push_back(count.as_u64(0));
        }
      }
      h.count = value.get("count") != nullptr ? value.get("count")->as_u64(0) : 0;
      h.sum = value.get_number("sum", 0.0);
      snapshot.histograms[name] = std::move(h);
    }
  }
  return snapshot;
}

std::optional<MetricsSnapshot> load_metrics_file(const std::string& path,
                                                 std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_metrics_json(text.str(), error);
}

}  // namespace swiftest::obs
