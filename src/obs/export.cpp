#include "obs/export.hpp"

#include <cstdio>
#include <ostream>

#include "obs/json_util.hpp"

namespace swiftest::obs {
namespace {

/// Chrome's `ts` field is in microseconds; emit ns with fixed millimicro
/// precision ("123.456") so nothing is lost and output stays byte-stable.
void append_ts_us(std::string& out, core::SimTime ns) {
  append_i64(out, ns / 1000);
  const auto frac = static_cast<int>(ns % 1000);
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03d", frac);
  out.append(buf);
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& out) {
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& ev : tracer.events()) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":\"";
    line += ev.name;
    line += "\",\"cat\":\"";
    line += to_string(ev.category);
    line += "\",\"ph\":\"";
    line += ev.kind == EventKind::kCounter ? 'C' : 'i';
    line += "\",\"ts\":";
    append_ts_us(line, ev.ts);
    line += ",\"pid\":1,\"tid\":";
    append_u64(line, ev.id);
    if (ev.kind == EventKind::kCounter) {
      line += ",\"args\":{\"value\":";
      append_double(line, ev.value);
      line += "}}";
    } else {
      line += ",\"s\":\"t\",\"args\":{\"value\":";
      append_double(line, ev.value);
      line += "}}";
    }
    out << line;
  }
  out << "\n]}\n";
}

void append_trace_jsonl_line(std::string& out, const TraceEvent& ev) {
  out += "{\"ts\":";
  append_i64(out, ev.ts);
  out += ",\"cat\":\"";
  out += to_string(ev.category);
  out += "\",\"k\":\"";
  out += ev.kind == EventKind::kCounter ? 'C' : 'i';
  out += "\",\"name\":\"";
  out += ev.name;
  out += "\",\"id\":";
  append_u64(out, ev.id);
  out += ",\"v\":";
  append_double(out, ev.value);
  out += "}\n";
}

void write_trace_jsonl(const Tracer& tracer, std::ostream& out) {
  std::string line;
  for (const TraceEvent& ev : tracer.events()) {
    line.clear();
    append_trace_jsonl_line(line, ev);
    out << line;
  }
}

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::string body = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": ";
    append_u64(body, value);
  }
  body += first ? "},\n" : "\n  },\n";
  body += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": ";
    append_double(body, value);
  }
  body += first ? "},\n" : "\n  },\n";
  body += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    body += first ? "\n" : ",\n";
    first = false;
    body += "    ";
    append_json_string(body, name);
    body += ": {\"le\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) body += ", ";
      append_double(body, h.bounds[i]);
    }
    body += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) body += ", ";
      append_u64(body, h.counts[i]);
    }
    body += "], \"count\": ";
    append_u64(body, h.count);
    body += ", \"sum\": ";
    append_double(body, h.sum);
    body += "}";
  }
  body += first ? "}\n" : "\n  }\n";
  body += "}\n";
  out << body;
}

}  // namespace swiftest::obs
