// Critical-path latency attribution over span trees.
//
// The analyzer reconstructs the span forest of a run (one tree per
// bandwidth test), then answers the question the raw trace cannot: of the
// 1.2 s a Swiftest test took, how much belongs to server selection, to each
// probing round, to the convergence window, to finalization?
//
// Two attributions are computed per tree:
//
//  - Stage self/total time. total = span duration; self = duration minus
//    the union of the children's intervals. Aggregated by span name.
//  - The critical path: walking backward from the root's end, the frontier
//    descends into whichever child was active at the frontier and charges
//    any uncovered gap to the parent. The resulting segments partition the
//    root interval exactly, so critical-path self-times sum to the measured
//    test duration by construction — the invariant CI checks to 1%.
//
// Spans carrying attribute aux != 0 (server sessions, which run concurrently
// with the client's rounds) count toward stage totals but are never descended
// into by the critical-path walk: the client's sequential stages own the
// attribution, and the concurrent participants annotate it.
//
// Robustness: open spans are clipped to their tree's maximum timestamp,
// spans whose parent is missing (dropped by a full store) become roots of
// their own trees, and parent cycles are broken at the first repeat — a
// damaged trace degrades to a coarser report, never a crash.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span/json.hpp"

namespace swiftest::obs::span {

/// Per-stage (span-name) aggregate within one tree or across the run.
struct StageStat {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;     // sum of span durations
  double self_s = 0.0;      // durations minus children cover
  double critical_s = 0.0;  // time charged to this stage on critical paths
};

/// One segment of a tree's critical path, in time order.
struct CriticalSegment {
  std::uint64_t span_id = 0;
  std::string name;
  core::SimTime start = 0;
  core::SimTime end = 0;

  [[nodiscard]] double seconds() const;
};

/// Attribution for one span tree (one test).
struct TraceAttribution {
  std::uint64_t root_id = 0;
  std::uint64_t trace_id = 0;
  std::string root_name;
  double duration_s = 0.0;      // root span duration
  double critical_sum_s = 0.0;  // sum over critical_path (== duration_s)
  std::vector<CriticalSegment> critical_path;
  std::vector<StageStat> stages;  // name-ordered, this tree only
};

/// Whole-run attribution: one entry per tree plus run-level aggregates.
struct AttributionReport {
  std::vector<TraceAttribution> traces;  // root-id order
  std::vector<StageStat> stages;         // name-ordered, across all trees
  std::size_t span_count = 0;
  std::size_t open_spans = 0;    // clipped to their tree's max timestamp
  std::size_t orphan_spans = 0;  // parent missing; promoted to roots
};

/// Builds the attribution report for a span set (from a live store via
/// to_span_data(), or from a parsed span JSON file).
[[nodiscard]] AttributionReport analyze_spans(const std::vector<SpanData>& spans);

/// Deterministic JSON rendering of a report (obs/json_util numbers).
void write_attribution_json(const AttributionReport& report, std::ostream& out);

/// Markdown rendering: per-stage table plus the critical path of each tree.
/// `max_traces` bounds the per-tree sections (0 = all).
void write_attribution_markdown(const AttributionReport& report, std::ostream& out,
                                std::size_t max_traces = 10);

}  // namespace swiftest::obs::span
