#include "obs/span/json.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/health/json.hpp"
#include "obs/json_util.hpp"

namespace swiftest::obs::span {

std::vector<SpanData> to_span_data(const SpanStore& store) {
  std::vector<SpanData> out;
  out.reserve(store.size());
  for (const SpanRecord& record : store.spans()) {
    SpanData data;
    data.id = record.id;
    data.parent = record.parent;
    data.trace_id = record.trace_id;
    data.name = record.name;
    data.category = to_string(record.category);
    data.start = record.start;
    data.end = record.end;
    data.closed = record.closed;
    for (std::size_t i = 0; i < record.attr_count; ++i) {
      const SpanAttr& attr = record.attrs[i];
      data.attrs.emplace_back(attr.key, attr.type == SpanAttr::Type::kU64
                                            ? static_cast<double>(attr.u64)
                                            : attr.f64);
    }
    out.push_back(std::move(data));
  }
  return out;
}

void append_span_json(std::string& out, const SpanRecord& record) {
  out += "{\"id\":";
  append_u64(out, record.id);
  out += ",\"parent\":";
  append_u64(out, record.parent);
  out += ",\"trace\":";
  append_u64(out, record.trace_id);
  out += ",\"name\":";
  append_json_string(out, record.name);
  out += ",\"cat\":\"";
  out += to_string(record.category);
  out += "\",\"start\":";
  append_i64(out, record.start);
  out += ",\"end\":";
  append_i64(out, record.end);
  out += ",\"closed\":";
  out += record.closed ? "true" : "false";
  if (record.attr_count > 0) {
    out += ",\"attrs\":{";
    for (std::size_t i = 0; i < record.attr_count; ++i) {
      const SpanAttr& attr = record.attrs[i];
      if (i > 0) out += ",";
      append_json_string(out, attr.key);
      out += ":";
      if (attr.type == SpanAttr::Type::kU64) {
        append_u64(out, attr.u64);
      } else {
        append_double(out, attr.f64);
      }
    }
    out += "}";
  }
  out += "}";
}

void write_spans_json(const SpanStore& store, std::ostream& out) {
  std::string line = "{\"spans\":[\n";
  out << line;
  bool first = true;
  for (const SpanRecord& record : store.spans()) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    append_span_json(line, record);
    out << line;
  }
  line = "\n],\"open\":";
  std::string tail;
  append_u64(tail, store.open_count());
  line += tail;
  line += ",\"dropped\":";
  tail.clear();
  append_u64(tail, store.dropped());
  line += tail;
  if (store.spilled() > 0) {
    line += ",\"spilled\":";
    tail.clear();
    append_u64(tail, store.spilled());
    line += tail;
  }
  line += "}\n";
  out << line;
}

std::optional<std::vector<SpanData>> parse_spans_json(std::string_view text,
                                                      std::string* error) {
  const auto doc = health::parse_json(text, error);
  if (!doc) return std::nullopt;
  const health::JsonValue* spans = doc->get("spans");
  if (spans == nullptr || !spans->is_array()) {
    if (error != nullptr) {
      *error = "span document must be an object with a \"spans\" array";
    }
    return std::nullopt;
  }
  std::vector<SpanData> out;
  out.reserve(spans->as_array().size());
  for (const health::JsonValue& entry : spans->as_array()) {
    if (!entry.is_object()) {
      if (error != nullptr) *error = "span entries must be objects";
      return std::nullopt;
    }
    SpanData data;
    // Ids and timestamps are 64-bit integers; read them exactly (a double
    // would silently round trace nonces above 2^53).
    const auto u64_field = [&entry](const char* key) -> std::uint64_t {
      const health::JsonValue* v = entry.get(key);
      return v != nullptr ? v->as_u64(0) : 0;
    };
    data.id = u64_field("id");
    data.parent = u64_field("parent");
    data.trace_id = u64_field("trace");
    data.name = entry.get_string("name", "");
    data.category = entry.get_string("cat", "");
    data.start = static_cast<core::SimTime>(u64_field("start"));
    data.end = static_cast<core::SimTime>(u64_field("end"));
    if (const health::JsonValue* closed = entry.get("closed")) {
      data.closed = closed->as_bool(false);
    }
    if (data.id == 0) {
      if (error != nullptr) *error = "span entry missing a nonzero \"id\"";
      return std::nullopt;
    }
    if (const health::JsonValue* attrs = entry.get("attrs");
        attrs != nullptr && attrs->is_object()) {
      for (const auto& [key, value] : attrs->members()) {
        data.attrs.emplace_back(key, value.as_number(0.0));
      }
    }
    out.push_back(std::move(data));
  }
  return out;
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const SpanStore& store) {
  return {
      {"spans", static_cast<double>(store.size())},
      {"open", static_cast<double>(store.open_count())},
      {"dropped", static_cast<double>(store.dropped())},
      {"spilled", static_cast<double>(store.spilled())},
  };
}

std::optional<std::vector<SpanData>> load_spans_file(const std::string& path,
                                                     std::string* error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_spans_json(text.str(), error);
}

}  // namespace swiftest::obs::span
