#include "obs/span/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

#include "obs/json_util.hpp"

namespace swiftest::obs::span {
namespace {

/// A span with resolved tree links and a clip-corrected end time.
struct Node {
  const SpanData* span = nullptr;
  core::SimTime end = 0;  // effective end (open spans clipped upward later)
  bool aux = false;       // excluded from critical-path descent
  std::vector<std::size_t> children;
};

core::SimTime raw_end(const SpanData& s) {
  // Open spans carry end == begin timestamp; never let end precede start.
  return std::max(s.closed ? s.end : s.start, s.start);
}

/// Spans marked with attribute aux != 0 are concurrent annotations (a server
/// session running alongside the client's probing rounds): they contribute to
/// stage totals and to their parent's child cover, but the critical-path walk
/// never descends into them — the sequential stages own the attribution.
bool is_aux(const SpanData& s) {
  for (const auto& [key, value] : s.attrs) {
    if (key == "aux") return value != 0.0;
  }
  return false;
}

/// Collects a tree's member indices in deterministic (DFS, child-order)
/// order. `seen` guards against parent cycles in damaged input.
std::vector<std::size_t> collect_tree(const std::vector<Node>& nodes, std::size_t root,
                                      std::vector<bool>& seen) {
  std::vector<std::size_t> members;
  std::vector<std::size_t> stack = {root};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    if (seen[i]) continue;
    seen[i] = true;
    members.push_back(i);
    for (auto it = nodes[i].children.rbegin(); it != nodes[i].children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return members;
}

/// Self time of one span: duration minus the union of its children's
/// intervals (clipped to the span).
double self_seconds(const std::vector<Node>& nodes, std::size_t i) {
  const Node& node = nodes[i];
  const core::SimTime s = node.span->start;
  const core::SimTime e = node.end;
  std::vector<std::pair<core::SimTime, core::SimTime>> intervals;
  intervals.reserve(node.children.size());
  for (std::size_t c : node.children) {
    const core::SimTime cs = std::max(nodes[c].span->start, s);
    const core::SimTime ce = std::min(nodes[c].end, e);
    if (ce > cs) intervals.emplace_back(cs, ce);
  }
  std::sort(intervals.begin(), intervals.end());
  core::SimDuration covered = 0;
  core::SimTime frontier = s;
  for (const auto& [cs, ce] : intervals) {
    const core::SimTime from = std::max(cs, frontier);
    if (ce > from) covered += ce - from;
    frontier = std::max(frontier, ce);
  }
  return core::to_seconds((e - s) - covered);
}

/// Walks the critical path of the tree under `root`: backward from the
/// root's end, descending into whichever child is active at the frontier and
/// charging uncovered gaps to the parent. The produced segments partition
/// [root.start, root.end] exactly.
std::vector<CriticalSegment> critical_path(const std::vector<Node>& nodes,
                                           std::size_t root) {
  struct Frame {
    std::size_t node;
    core::SimTime s;
    core::SimTime frontier;
    std::vector<std::size_t> by_end;  // children, latest effective end first
    std::size_t next = 0;
  };
  auto make_frame = [&nodes](std::size_t i, core::SimTime s, core::SimTime e) {
    Frame frame{i, s, e, {}, 0};
    frame.by_end.reserve(nodes[i].children.size());
    for (std::size_t c : nodes[i].children) {
      if (!nodes[c].aux) frame.by_end.push_back(c);
    }
    std::sort(frame.by_end.begin(), frame.by_end.end(),
              [&nodes](std::size_t a, std::size_t b) {
                if (nodes[a].end != nodes[b].end) return nodes[a].end > nodes[b].end;
                return nodes[a].span->id > nodes[b].span->id;
              });
    return frame;
  };

  std::vector<CriticalSegment> segments;  // reverse time order while walking
  auto emit = [&](std::size_t i, core::SimTime s, core::SimTime e) {
    if (e <= s) return;
    CriticalSegment seg;
    seg.span_id = nodes[i].span->id;
    seg.name = nodes[i].span->name;
    seg.start = s;
    seg.end = e;
    segments.push_back(std::move(seg));
  };

  // Parent cycles leave back-edges in `children`; never descend into a node
  // already on (or through) the walk, so damaged input cannot loop forever.
  std::vector<bool> visited(nodes.size(), false);
  visited[root] = true;

  std::vector<Frame> stack;
  stack.push_back(make_frame(root, nodes[root].span->start, nodes[root].end));
  while (!stack.empty()) {
    Frame& f = stack.back();
    bool descended = false;
    while (f.frontier > f.s && f.next < f.by_end.size()) {
      const std::size_t c = f.by_end[f.next++];
      if (visited[c]) continue;
      const core::SimTime cs = std::max(nodes[c].span->start, f.s);
      const core::SimTime ce = std::min(nodes[c].end, f.frontier);
      if (ce <= cs) continue;
      emit(f.node, ce, f.frontier);  // gap between child end and frontier
      f.frontier = cs;
      visited[c] = true;
      stack.push_back(make_frame(c, cs, ce));
      descended = true;
      break;
    }
    if (descended) continue;
    emit(f.node, f.s, f.frontier);
    stack.pop_back();
  }
  std::reverse(segments.begin(), segments.end());
  return segments;
}

StageStat& stage_for(std::map<std::string, StageStat>& stages, const std::string& name) {
  StageStat& stat = stages[name];
  if (stat.name.empty()) stat.name = name;
  return stat;
}

std::vector<StageStat> to_sorted(const std::map<std::string, StageStat>& stages) {
  std::vector<StageStat> out;
  out.reserve(stages.size());
  for (const auto& [name, stat] : stages) out.push_back(stat);
  return out;
}

void append_stage_json(std::string& body, const StageStat& stat,
                       const char* indent) {
  body += indent;
  body += "{\"name\":";
  append_json_string(body, stat.name);
  body += ",\"count\":";
  append_u64(body, stat.count);
  body += ",\"total_s\":";
  append_double(body, stat.total_s);
  body += ",\"self_s\":";
  append_double(body, stat.self_s);
  body += ",\"critical_s\":";
  append_double(body, stat.critical_s);
  body += "}";
}

}  // namespace

double CriticalSegment::seconds() const { return core::to_seconds(end - start); }

AttributionReport analyze_spans(const std::vector<SpanData>& spans) {
  AttributionReport report;
  report.span_count = spans.size();

  // Resolve tree links. Duplicate ids keep the first occurrence.
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].id, i);

  std::vector<Node> nodes(spans.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    nodes[i].span = &spans[i];
    nodes[i].end = raw_end(spans[i]);
    nodes[i].aux = is_aux(spans[i]);
    if (!spans[i].closed) ++report.open_spans;
    const std::uint64_t parent = spans[i].parent;
    const auto it = by_id.find(parent);
    if (parent == 0 || parent == spans[i].id || it == by_id.end() ||
        it->second == i) {
      if (parent != 0 && (it == by_id.end() || it->second == i)) {
        ++report.orphan_spans;
      }
      roots.push_back(i);
    } else {
      nodes[it->second].children.push_back(i);
    }
  }

  // Parent cycles (possible only in damaged input) are unreachable from any
  // root: break each at its smallest-id member and analyze what remains.
  std::vector<bool> seen(spans.size(), false);
  std::vector<std::vector<std::size_t>> trees;
  for (std::size_t r : roots) trees.push_back(collect_tree(nodes, r, seen));
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (seen[i]) continue;
    ++report.orphan_spans;
    roots.push_back(i);
    trees.push_back(collect_tree(nodes, i, seen));
  }

  std::map<std::string, StageStat> run_stages;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const std::vector<std::size_t>& members = trees[t];
    const std::size_t root = roots[t];

    // Clip open spans up to the tree's latest timestamp so an in-flight
    // trace still yields a well-formed attribution.
    core::SimTime tree_max = nodes[root].span->start;
    for (std::size_t i : members) tree_max = std::max(tree_max, nodes[i].end);
    for (std::size_t i : members) {
      if (!nodes[i].span->closed) nodes[i].end = tree_max;
    }

    TraceAttribution trace;
    trace.root_id = nodes[root].span->id;
    trace.trace_id = nodes[root].span->trace_id;
    trace.root_name = nodes[root].span->name;
    trace.duration_s = core::to_seconds(nodes[root].end - nodes[root].span->start);
    trace.critical_path = critical_path(nodes, root);

    std::map<std::string, StageStat> tree_stages;
    for (std::size_t i : members) {
      const double total = core::to_seconds(nodes[i].end - nodes[i].span->start);
      const double self = self_seconds(nodes, i);
      for (auto* stages : {&tree_stages, &run_stages}) {
        StageStat& stat = stage_for(*stages, nodes[i].span->name);
        ++stat.count;
        stat.total_s += total;
        stat.self_s += self;
      }
    }
    for (const CriticalSegment& seg : trace.critical_path) {
      const double s = seg.seconds();
      trace.critical_sum_s += s;
      stage_for(tree_stages, seg.name).critical_s += s;
      stage_for(run_stages, seg.name).critical_s += s;
    }
    trace.stages = to_sorted(tree_stages);
    report.traces.push_back(std::move(trace));
  }

  std::sort(report.traces.begin(), report.traces.end(),
            [](const TraceAttribution& a, const TraceAttribution& b) {
              return a.root_id < b.root_id;
            });
  report.stages = to_sorted(run_stages);
  return report;
}

void write_attribution_json(const AttributionReport& report, std::ostream& out) {
  std::string body = "{\n  \"summary\": {\"spans\": ";
  append_u64(body, report.span_count);
  body += ", \"traces\": ";
  append_u64(body, report.traces.size());
  body += ", \"open_spans\": ";
  append_u64(body, report.open_spans);
  body += ", \"orphan_spans\": ";
  append_u64(body, report.orphan_spans);
  body += "},\n  \"stages\": [";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    body += i == 0 ? "\n" : ",\n";
    append_stage_json(body, report.stages[i], "    ");
  }
  body += report.stages.empty() ? "],\n" : "\n  ],\n";
  body += "  \"traces\": [";
  for (std::size_t t = 0; t < report.traces.size(); ++t) {
    const TraceAttribution& trace = report.traces[t];
    body += t == 0 ? "\n" : ",\n";
    body += "    {\"root_id\": ";
    append_u64(body, trace.root_id);
    body += ", \"trace_id\": ";
    append_u64(body, trace.trace_id);
    body += ", \"root_name\": ";
    append_json_string(body, trace.root_name);
    body += ", \"duration_s\": ";
    append_double(body, trace.duration_s);
    body += ", \"critical_sum_s\": ";
    append_double(body, trace.critical_sum_s);
    body += ",\n     \"critical_path\": [";
    for (std::size_t i = 0; i < trace.critical_path.size(); ++i) {
      const CriticalSegment& seg = trace.critical_path[i];
      body += i == 0 ? "\n" : ",\n";
      body += "       {\"span\": ";
      append_u64(body, seg.span_id);
      body += ", \"name\": ";
      append_json_string(body, seg.name);
      body += ", \"start\": ";
      append_i64(body, seg.start);
      body += ", \"end\": ";
      append_i64(body, seg.end);
      body += ", \"seconds\": ";
      append_double(body, seg.seconds());
      body += "}";
    }
    body += trace.critical_path.empty() ? "],\n" : "\n     ],\n";
    body += "     \"stages\": [";
    for (std::size_t i = 0; i < trace.stages.size(); ++i) {
      body += i == 0 ? "\n" : ",\n";
      append_stage_json(body, trace.stages[i], "       ");
    }
    body += trace.stages.empty() ? "]}" : "\n     ]}";
  }
  body += report.traces.empty() ? "]\n" : "\n  ]\n";
  body += "}\n";
  out << body;
}

void write_attribution_markdown(const AttributionReport& report, std::ostream& out,
                                std::size_t max_traces) {
  char buf[160];
  out << "# Latency attribution\n\n";
  std::snprintf(buf, sizeof(buf),
                "%zu span(s) in %zu trace(s); %zu open, %zu orphan.\n\n",
                report.span_count, report.traces.size(), report.open_spans,
                report.orphan_spans);
  out << buf;

  out << "## Stages (all traces)\n\n"
      << "| stage | count | total s | self s | critical s |\n"
      << "|---|---:|---:|---:|---:|\n";
  for (const StageStat& stat : report.stages) {
    std::snprintf(buf, sizeof(buf), "| %s | %llu | %.4f | %.4f | %.4f |\n",
                  stat.name.c_str(), static_cast<unsigned long long>(stat.count),
                  stat.total_s, stat.self_s, stat.critical_s);
    out << buf;
  }

  const std::size_t shown = max_traces == 0
                                ? report.traces.size()
                                : std::min(max_traces, report.traces.size());
  for (std::size_t t = 0; t < shown; ++t) {
    const TraceAttribution& trace = report.traces[t];
    std::snprintf(buf, sizeof(buf),
                  "\n## Trace %s (root %llu, trace_id %llu): %.4f s\n\n",
                  trace.root_name.c_str(),
                  static_cast<unsigned long long>(trace.root_id),
                  static_cast<unsigned long long>(trace.trace_id),
                  trace.duration_s);
    out << buf;
    out << "Critical path (sums to " << trace.critical_sum_s << " s):\n\n"
        << "| stage | start s | seconds | share |\n"
        << "|---|---:|---:|---:|\n";
    for (const CriticalSegment& seg : trace.critical_path) {
      const double share =
          trace.duration_s > 0.0 ? 100.0 * seg.seconds() / trace.duration_s : 0.0;
      std::snprintf(buf, sizeof(buf), "| %s | %.4f | %.4f | %.1f%% |\n",
                    seg.name.c_str(), core::to_seconds(seg.start), seg.seconds(),
                    share);
      out << buf;
    }
  }
  if (shown < report.traces.size()) {
    std::snprintf(buf, sizeof(buf), "\n(%zu more trace(s) not shown)\n",
                  report.traces.size() - shown);
    out << buf;
  }
}

}  // namespace swiftest::obs::span
