// Span JSON: the serialized form of a SpanStore, and its reader.
//
// One document per run:
//
//   {"spans": [
//     {"id": 1, "parent": 0, "trace": 123, "name": "swiftest.test",
//      "cat": "protocol", "start": 0, "end": 1200000000, "closed": true,
//      "attrs": {"rate_mbps": 25.0}},
//     ...
//   ], "open": 0, "dropped": 0}
//
// Spans are emitted in begin order with json_util's deterministic number
// rendering, so same-seed runs produce byte-identical files. The reader
// (parse_spans_json) is the input side of `swiftest-cli trace analyze`: it
// produces owning SpanData values (names as std::string) that the analyzer
// consumes, tolerating unknown fields and out-of-order ids.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/time.hpp"
#include "obs/span/span.hpp"

namespace swiftest::obs::span {

/// Owning, source-independent span value: what the analyzer works on,
/// whether the spans came from a live SpanStore or a parsed JSON file.
struct SpanData {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t trace_id = 0;
  std::string name;
  std::string category;
  core::SimTime start = 0;
  core::SimTime end = 0;
  bool closed = false;
  std::vector<std::pair<std::string, double>> attrs;
};

/// Copies a live store's spans into the analyzer's owning form.
[[nodiscard]] std::vector<SpanData> to_span_data(const SpanStore& store);

/// Writes the span document for a store (deterministic bytes). Stores that
/// spilled additionally carry a "spilled" count after "dropped"; stores that
/// never spilled render exactly as before.
void write_spans_json(const SpanStore& store, std::ostream& out);

/// Appends one span's JSON object (no surrounding newline/comma) — the exact
/// entry format of the "spans" array, shared with the spill writer so
/// spilled JSONL segments use the same schema line by line.
void append_span_json(std::string& out, const SpanRecord& record);

/// Parses a span document. Returns nullopt (with a reason in `error`, when
/// provided) on malformed JSON or a document without a "spans" array.
[[nodiscard]] std::optional<std::vector<SpanData>> parse_spans_json(
    std::string_view text, std::string* error = nullptr);

/// Loads and parses a span document from disk.
[[nodiscard]] std::optional<std::vector<SpanData>> load_spans_file(
    const std::string& path, std::string* error = nullptr);

/// Manifest summary of a span store: retained/open/dropped/spilled counts.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const SpanStore& store);

}  // namespace swiftest::obs::span
