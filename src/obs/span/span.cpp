#include "obs/span/span.hpp"

#include <string>

namespace swiftest::obs::span {

SpanId SpanStore::begin(core::SimTime ts, Category category, const char* name,
                        SpanId parent, std::uint64_t trace_id) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = parent;
  record.name = name;
  record.category = category;
  record.start = ts;
  record.end = ts;
  if (trace_id != 0) {
    record.trace_id = trace_id;
    anchors_.emplace(trace_id, record.id);  // first registration wins
  } else if (const SpanRecord* p = find(parent)) {
    record.trace_id = p->trace_id;
  }
  spans_.push_back(record);
  ++open_;
  if (tracer_ != nullptr && tracer_->wants(category)) {
    tracer_->record(ts, category, EventKind::kInstant, "span.begin", record.id,
                    static_cast<double>(parent));
  }
  return record.id;
}

void SpanStore::end(SpanId id, core::SimTime ts) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->closed) return;
  record->end = ts < record->start ? record->start : ts;
  record->closed = true;
  --open_;
  const double seconds = core::to_seconds(record->duration());
  if (tracer_ != nullptr && tracer_->wants(record->category)) {
    tracer_->record(record->end, record->category, EventKind::kInstant, "span.end",
                    id, seconds);
  }
  if (metrics_ != nullptr) {
    Histogram*& hist = stage_hist_[static_cast<const void*>(record->name)];
    if (hist == nullptr) {
      hist = &metrics_->histogram(
          std::string("span.stage_seconds/") + record->name,
          {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0});
    }
    hist->observe(seconds);
  }
}

void SpanStore::attr_f64(SpanId id, const char* key, double value) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->attr_count >= SpanRecord::kMaxAttrs) return;
  SpanAttr& attr = record->attrs[record->attr_count++];
  attr.key = key;
  attr.type = SpanAttr::Type::kF64;
  attr.f64 = value;
}

void SpanStore::attr_u64(SpanId id, const char* key, std::uint64_t value) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->attr_count >= SpanRecord::kMaxAttrs) return;
  SpanAttr& attr = record->attrs[record->attr_count++];
  attr.key = key;
  attr.type = SpanAttr::Type::kU64;
  attr.u64 = value;
}

void SpanStore::set_trace_id(SpanId id, std::uint64_t trace_id) {
  SpanRecord* record = find(id);
  if (record == nullptr || trace_id == 0) return;
  record->trace_id = trace_id;
  anchors_.emplace(trace_id, id);
}

SpanId SpanStore::anchor(std::uint64_t trace_id) const {
  const auto it = anchors_.find(trace_id);
  return it == anchors_.end() ? kNoSpan : it->second;
}

void SpanStore::merge_from(const SpanStore& src) {
  const SpanId offset = spans_.size();
  spans_.reserve(spans_.size() + src.spans_.size());
  for (const SpanRecord& r : src.spans_) {
    SpanRecord copy = r;
    copy.id += offset;
    if (copy.parent != kNoSpan) copy.parent += offset;
    spans_.push_back(copy);
  }
  for (const auto& [trace_id, id] : src.anchors_) {
    anchors_.emplace(trace_id, id + offset);  // first registration wins
  }
  dropped_ += src.dropped_;
  open_ += src.open_;
}

}  // namespace swiftest::obs::span
