#include "obs/span/span.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace swiftest::obs::span {

SpanRecord* SpanStore::find(SpanId id) noexcept {
  if (id == kNoSpan || spans_.empty()) return nullptr;
  const SpanId first = spans_.front().id;
  if (id < first || id > spans_.back().id) return nullptr;
  if (!gapped_) return &spans_[static_cast<std::size_t>(id - first)];
  const auto it = std::lower_bound(
      spans_.begin(), spans_.end(), id,
      [](const SpanRecord& r, SpanId value) { return r.id < value; });
  return it != spans_.end() && it->id == id ? &*it : nullptr;
}

void SpanStore::make_room() {
  if (spill_) {
    // Rotate out the longest fully-closed prefix. Parents begin before and
    // close after their children, so an open subtree is never split: the
    // prefix stops at the oldest still-open span.
    std::size_t closed = 0;
    while (closed < spans_.size() && spans_[closed].closed) ++closed;
    if (closed == 0) return;
    spill_(spans_.data(), closed);
    spilled_ += closed;
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(closed));
    return;
  }
  if (head_keep_ == 0 && tail_keep_ == 0) return;
  // Head+tail retention: keep the first head_keep_ ids ever begun and the
  // newest tail_keep_ records; evict the middle in one batch so eviction
  // cost amortizes to O(1) per begin.
  std::size_t head_n = 0;
  while (head_n < spans_.size() && spans_[head_n].id <= head_keep_) ++head_n;
  if (spans_.size() <= head_n + tail_keep_) return;
  const std::size_t erase_end = spans_.size() - tail_keep_;
  for (std::size_t i = head_n; i < erase_end; ++i) {
    if (!spans_[i].closed) --open_;
  }
  dropped_ += erase_end - head_n;
  spans_.erase(spans_.begin() + static_cast<std::ptrdiff_t>(head_n),
               spans_.begin() + static_cast<std::ptrdiff_t>(erase_end));
  gapped_ = true;
}

SpanId SpanStore::begin(core::SimTime ts, Category category, const char* name,
                        SpanId parent, std::uint64_t trace_id) {
  if (sampled_mode_ && parent == kNoSpan && trace_id != 0 &&
      anchors_.find(trace_id) == anchors_.end()) {
    ++suppressed_;
    return kNoSpan;
  }
  if (spans_.size() >= capacity_) make_room();
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent;
  record.name = name;
  record.category = category;
  record.start = ts;
  record.end = ts;
  if (trace_id != 0) {
    record.trace_id = trace_id;
    anchors_.emplace(trace_id, record.id);  // first registration wins
  } else if (const SpanRecord* p = find(parent)) {
    record.trace_id = p->trace_id;
  }
  spans_.push_back(record);
  ++open_;
  if (tracer_ != nullptr && tracer_->wants(category)) {
    tracer_->record(ts, category, EventKind::kInstant, "span.begin", record.id,
                    static_cast<double>(parent));
  }
  return record.id;
}

void SpanStore::end(SpanId id, core::SimTime ts) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->closed) return;
  record->end = ts < record->start ? record->start : ts;
  record->closed = true;
  --open_;
  const double seconds = core::to_seconds(record->duration());
  if (tracer_ != nullptr && tracer_->wants(record->category)) {
    tracer_->record(record->end, record->category, EventKind::kInstant, "span.end",
                    id, seconds);
  }
  if (metrics_ != nullptr) {
    Histogram*& hist = stage_hist_[static_cast<const void*>(record->name)];
    if (hist == nullptr) {
      hist = &metrics_->histogram(
          std::string("span.stage_seconds/") + record->name,
          {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0});
    }
    hist->observe(seconds);
  }
}

void SpanStore::attr_f64(SpanId id, const char* key, double value) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->attr_count >= SpanRecord::kMaxAttrs) return;
  SpanAttr& attr = record->attrs[record->attr_count++];
  attr.key = key;
  attr.type = SpanAttr::Type::kF64;
  attr.f64 = value;
}

void SpanStore::attr_u64(SpanId id, const char* key, std::uint64_t value) {
  SpanRecord* record = find(id);
  if (record == nullptr || record->attr_count >= SpanRecord::kMaxAttrs) return;
  SpanAttr& attr = record->attrs[record->attr_count++];
  attr.key = key;
  attr.type = SpanAttr::Type::kU64;
  attr.u64 = value;
}

void SpanStore::set_trace_id(SpanId id, std::uint64_t trace_id) {
  SpanRecord* record = find(id);
  if (record == nullptr || trace_id == 0) return;
  record->trace_id = trace_id;
  anchors_.emplace(trace_id, id);
}

SpanId SpanStore::anchor(std::uint64_t trace_id) const {
  const auto it = anchors_.find(trace_id);
  return it == anchors_.end() ? kNoSpan : it->second;
}

void SpanStore::merge_from(const SpanStore& src) {
  // Parents always begin before their children, so by the time a child is
  // copied its parent's new id is already in the remap (unless src spilled
  // or evicted it — then the child becomes a root here, matching how the
  // spill file keeps the original global ids).
  std::map<SpanId, SpanId> remap;
  spans_.reserve(spans_.size() + src.spans_.size());
  for (const SpanRecord& r : src.spans_) {
    SpanRecord copy = r;
    copy.id = next_id_++;
    if (copy.parent != kNoSpan) {
      const auto it = remap.find(copy.parent);
      copy.parent = it == remap.end() ? kNoSpan : it->second;
    }
    remap.emplace(r.id, copy.id);
    spans_.push_back(copy);
  }
  for (const auto& [trace_id, id] : src.anchors_) {
    const auto it = remap.find(id);
    if (it != remap.end()) {
      anchors_.emplace(trace_id, it->second);  // first registration wins
    }
  }
  dropped_ += src.dropped_;
  spilled_ += src.spilled_;
  suppressed_ += src.suppressed_;
  open_ += src.open_;
  gapped_ = gapped_ || src.gapped_;
}

void SpanStore::sort_canonical() {
  std::stable_sort(
      spans_.begin(), spans_.end(), [](const SpanRecord& a, const SpanRecord& b) {
        if (a.start != b.start) return a.start < b.start;
        if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
        // Names are literals but MUST compare by content: the same literal
        // has different addresses in different shard replicas.
        if (const int c = std::strcmp(a.name, b.name); c != 0) return c < 0;
        if (a.end != b.end) return a.end < b.end;
        if (a.category != b.category) return a.category < b.category;
        return a.closed != b.closed && !a.closed;
        // Full content ties keep their (stable) order; identical records
        // render identically either way.
      });
  std::map<SpanId, SpanId> remap;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    remap.emplace(spans_[i].id, static_cast<SpanId>(i + 1));
  }
  for (SpanRecord& r : spans_) {
    r.id = remap[r.id];
    if (r.parent != kNoSpan) {
      const auto it = remap.find(r.parent);
      r.parent = it == remap.end() ? kNoSpan : it->second;
    }
  }
  anchors_.clear();
  for (const SpanRecord& r : spans_) {
    if (r.trace_id != 0 && r.parent == kNoSpan) {
      anchors_.emplace(r.trace_id, r.id);  // first root per trace wins
    }
  }
  next_id_ = static_cast<SpanId>(spans_.size()) + 1;
  gapped_ = false;  // ids are 1..n in vector order again
}

}  // namespace swiftest::obs::span
