// Causal span model: who spent the time, and under whom.
//
// The ring-buffer tracer (obs/trace.hpp) answers "what happened when"; spans
// answer "where the time went". A Span is a named sim-time interval with an
// id, a parent id, and a handful of typed attributes; together the spans of
// one bandwidth test form a tree rooted at the test span, and the analyzer
// (critical_path.hpp) turns that tree into a per-stage latency attribution.
//
// Determinism rules match the rest of obs/: ids are a sequential counter,
// timestamps are the simulated clock, names are string literals, and the
// store appends in begin order — so two same-seed runs export byte-identical
// span JSON. A SpanStore is bounded: once `capacity` spans have begun, new
// begins return kNoSpan (and are counted dropped); every operation on
// kNoSpan is a no-op, so instrumentation degrades gracefully instead of
// corrupting the tree.
//
// Propagation: a SpanContext carries the ambient open-span stack for one
// client (netsim::ClientContext owns one). Synchronous stages use the RAII
// SpanScope against that context; asynchronous stages (a probing round that
// spans many scheduler events) hold the SpanId and call end_at() when the
// stage closes. Server-side participants that only share a protocol nonce
// with the client attach through the store's trace-anchor registry:
// the client registers its test span under the nonce, the server parents
// its session span at anchor(nonce) — one tree per test, no protocol
// change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs::span {

/// Span identifier: 1-based begin order within one store. 0 is "no span";
/// every SpanStore/SpanContext operation on kNoSpan is a no-op.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One typed key/value attribute. Keys must be string literals.
struct SpanAttr {
  enum class Type : std::uint8_t { kF64, kU64 };
  const char* key = "";
  Type type = Type::kF64;
  double f64 = 0.0;
  std::uint64_t u64 = 0;
};

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  /// Groups every participant of one logical operation (a bandwidth test):
  /// the wire protocol nonce. 0 = not part of a cross-component trace.
  std::uint64_t trace_id = 0;
  /// Must point at static storage (a string literal).
  const char* name = "";
  Category category = Category::kProtocol;
  core::SimTime start = 0;
  core::SimTime end = 0;
  bool closed = false;

  static constexpr std::size_t kMaxAttrs = 4;
  std::size_t attr_count = 0;
  SpanAttr attrs[kMaxAttrs];

  [[nodiscard]] core::SimDuration duration() const noexcept { return end - start; }
};

/// Append-only bounded store of spans, in begin order (id == index + 1).
class SpanStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit SpanStore(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  SpanStore(const SpanStore&) = delete;
  SpanStore& operator=(const SpanStore&) = delete;

  /// Optional sinks, wired by the owning Hub: every begin/end is mirrored
  /// into the tracer (category-gated instant events "span.begin"/"span.end")
  /// and every closed span's duration lands in a per-stage histogram
  /// "span.stage_seconds/<name>" so SLO-style bounds can watch stage times.
  void set_sinks(Tracer* tracer, MetricsRegistry* metrics) noexcept {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Rotation sink: when set, a store that reaches capacity spills its
  /// longest fully-closed prefix (in id order) through this callback and
  /// frees that room, instead of refusing the begin. Spilled spans count in
  /// spilled(), keep their global ids in the spill file, and become
  /// invisible to find() — every later operation on a spilled id is a no-op.
  using SpillFn = std::function<void(const SpanRecord*, std::size_t)>;
  void set_spill(SpillFn fn) { spill_ = std::move(fn); }

  /// Head+tail retention: with no spill sink, a full store keeps the first
  /// `head` spans (by id) ever begun plus the newest spans, and evicts the
  /// middle in batches (counted in dropped()) — so both the first and last
  /// tests of a long run survive in the artifact. `head + tail` must leave
  /// room below capacity or begins still drop. Zero/zero (the default) is
  /// the legacy behavior: begins are refused once the store is full.
  void set_retention(std::size_t head, std::size_t tail) noexcept {
    head_keep_ = head;
    tail_keep_ = tail;
  }

  /// Sampled mode (fleet sampling): a begin that would start a NEW trace
  /// tree for an unknown trace_id — nonzero trace_id, no parent, no anchor
  /// registered — is silently refused (counted in suppressed()). Unsampled
  /// tests never register their anchor, so cross-component participants
  /// (server sessions keyed on the wire nonce) drop out with them instead
  /// of leaving orphan roots in the artifact.
  void set_sampled_mode(bool on) noexcept { sampled_mode_ = on; }
  [[nodiscard]] bool sampled_mode() const noexcept { return sampled_mode_; }

  /// Opens a span. Returns kNoSpan (and counts the drop) once the store is
  /// at capacity. `trace_id` 0 inherits the parent's trace id.
  SpanId begin(core::SimTime ts, Category category, const char* name,
               SpanId parent = kNoSpan, std::uint64_t trace_id = 0);

  /// Closes a span at `ts`. No-op for kNoSpan, unknown, or already-closed
  /// ids (a double end must not corrupt the record).
  void end(SpanId id, core::SimTime ts);

  /// Attaches one typed attribute; silently dropped past kMaxAttrs.
  void attr_f64(SpanId id, const char* key, double value);
  void attr_u64(SpanId id, const char* key, std::uint64_t value);

  /// Re-keys a span's trace id after the fact (the wire nonce is drawn after
  /// the test span opens) and registers it as the trace's anchor.
  void set_trace_id(SpanId id, std::uint64_t trace_id);

  /// The span other components attach their sub-spans to for `trace_id`
  /// (registered by begin() with a nonzero trace_id, or set_trace_id).
  /// kNoSpan when no anchor is registered — callers then start their own
  /// root, and the analyzer reports it as a separate tree.
  [[nodiscard]] SpanId anchor(std::uint64_t trace_id) const;

  /// Appends every retained span of `src` with fresh sequential ids (parent
  /// links remapped; a parent that `src` spilled or evicted remaps to
  /// kNoSpan); anchors remap the same way (first registration still wins)
  /// and drop/spill counts add. No sink mirroring — the source store already
  /// mirrored into its own shard's tracer/metrics, which merge separately.
  /// Merging a full source into an empty store reproduces it record for
  /// record; an explicit merge may grow the store past its begin() capacity.
  void merge_from(const SpanStore& src);

  /// Reorders the retained spans into their content order — (start,
  /// trace_id, name by string value, end, ...) — and re-ids them 1..n with
  /// parents remapped and anchors rebuilt. The sampled-artifact determinism
  /// hinge: a sharded merge appends shards in shard order, which depends on
  /// the partition; after this sort the same retained set renders
  /// byte-identically for every shard count (DESIGN.md §12).
  void sort_canonical();

  /// Retained spans, id-ascending (spilled/evicted spans are absent).
  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Begins refused, or retained spans evicted by head+tail retention.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Spans rotated out through the spill sink.
  [[nodiscard]] std::uint64_t spilled() const noexcept { return spilled_; }
  /// Begins refused by sampled mode (intentional, not data loss).
  [[nodiscard]] std::uint64_t suppressed() const noexcept { return suppressed_; }
  /// Spans begun but not yet ended (evicted open spans leave this count).
  [[nodiscard]] std::size_t open_count() const noexcept { return open_; }

  /// In-memory footprint of the retained spans (for budget accounting).
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept {
    return spans_.capacity() * sizeof(SpanRecord);
  }

  void clear() noexcept {
    spans_.clear();
    anchors_.clear();
    dropped_ = 0;
    spilled_ = 0;
    suppressed_ = 0;
    open_ = 0;
    next_id_ = 1;
    gapped_ = false;
  }

 private:
  [[nodiscard]] SpanRecord* find(SpanId id) noexcept;
  /// Frees room at capacity: spill the closed prefix, or evict the middle
  /// under head+tail retention. May free nothing (all spans open / no policy).
  void make_room();

  std::size_t capacity_;
  std::vector<SpanRecord> spans_;
  std::map<std::uint64_t, SpanId> anchors_;
  std::uint64_t dropped_ = 0;
  std::uint64_t spilled_ = 0;
  std::uint64_t suppressed_ = 0;
  std::size_t open_ = 0;
  SpanId next_id_ = 1;
  /// True once retention eviction removed ids from the middle — find() then
  /// binary-searches instead of indexing.
  bool gapped_ = false;
  bool sampled_mode_ = false;
  std::size_t head_keep_ = 0;
  std::size_t tail_keep_ = 0;
  SpillFn spill_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  /// Per-name histogram handles, keyed on the literal's address (bind once).
  std::map<const void*, Histogram*> stage_hist_;
};

/// One client's ambient span state: the store it writes to, a sim-clock
/// callback, and the open-span stack that makes SpanScope nesting work.
/// Rebindable because a Hub may be attached to the scheduler after the
/// owning client exists; with a null store every operation is a no-op.
class SpanContext {
 public:
  using ClockFn = core::SimTime (*)(void*);

  void bind(SpanStore* store, ClockFn clock, void* clock_arg) noexcept {
    store_ = store;
    clock_ = clock;
    clock_arg_ = clock_arg;
  }

  [[nodiscard]] SpanStore* store() const noexcept { return store_; }
  [[nodiscard]] bool enabled() const noexcept {
    return store_ != nullptr && !suppressed_;
  }

  /// Whole-test sampling switch: while suppressed, begin() returns kNoSpan
  /// (so every dependent attr/end/push is a no-op) without touching the
  /// store. Deliberately NOT reset by bind() — the owning client re-binds
  /// the context on every access, but a sampling decision covers the whole
  /// test and is flipped explicitly at test start.
  void set_suppressed(bool suppressed) noexcept { suppressed_ = suppressed; }
  [[nodiscard]] bool suppressed() const noexcept { return suppressed_; }
  [[nodiscard]] core::SimTime now() const noexcept {
    return clock_ != nullptr ? clock_(clock_arg_) : 0;
  }

  /// Innermost open span — the parent new work attaches under.
  [[nodiscard]] SpanId current() const noexcept {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  /// Opens a child of current() at the clock's now. Does not push.
  SpanId begin(Category category, const char* name) {
    if (store_ == nullptr || suppressed_) return kNoSpan;
    return store_->begin(now(), category, name, current());
  }

  void end(SpanId id) { end_at(id, now()); }
  void end_at(SpanId id, core::SimTime ts) {
    if (store_ != nullptr) store_->end(id, ts);
  }

  /// Makes `id` the ambient parent until the matching pop. Pop tolerates
  /// out-of-order ids (it unwinds to the matching entry) so an abandoned
  /// async stage cannot wedge the stack.
  void push(SpanId id) {
    if (id != kNoSpan) stack_.push_back(id);
  }
  void pop(SpanId id) noexcept {
    while (!stack_.empty()) {
      const SpanId top = stack_.back();
      stack_.pop_back();
      if (top == id) break;
    }
  }

 private:
  SpanStore* store_ = nullptr;
  ClockFn clock_ = nullptr;
  void* clock_arg_ = nullptr;
  bool suppressed_ = false;
  std::vector<SpanId> stack_;
};

/// RAII span for synchronous stages: begins a child of the context's current
/// span and pushes it; ends and pops on destruction. With a disabled context
/// the whole object is a no-op (id() == kNoSpan).
class SpanScope {
 public:
  SpanScope(SpanContext& ctx, Category category, const char* name)
      : ctx_(ctx), id_(ctx.begin(category, name)) {
    ctx_.push(id_);
  }
  ~SpanScope() {
    ctx_.pop(id_);
    ctx_.end(id_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  [[nodiscard]] SpanId id() const noexcept { return id_; }

 private:
  SpanContext& ctx_;
  SpanId id_;
};

}  // namespace swiftest::obs::span
