// Deterministic simulation-time event tracer.
//
// A ring buffer of fixed-size trace records, each stamped with the simulated
// clock (never wall time), so two runs with the same seed produce
// byte-identical trace files. Event names must be string literals (static
// storage): recording an event is a handful of stores into preallocated
// memory — no allocation, no formatting — and sites guard on a null Hub
// pointer, so a simulation without an attached Hub pays one branch per site.
//
// Exporters (trace_export.hpp) render the retained events as a Chrome
// `trace_event` JSON document (loadable in chrome://tracing / Perfetto) or
// as compact JSONL, one event per line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/time.hpp"

namespace swiftest::obs {

/// Trace categories, one bit each, so a mask can select subsystems. Keeping
/// the set small and stable is deliberate: category filtering is the lever
/// that keeps a long simulation's trace focused (e.g. protocol-only).
enum class Category : std::uint32_t {
  kScheduler = 1u << 0,  // event queue activity
  kLink = 1u << 1,       // access/egress link enqueue/deliver/drop
  kTransport = 1u << 2,  // TCP cwnd/retransmit, UDP pacing
  kProtocol = 1u << 3,   // Swiftest sessions, probing-stage transitions
  kFleet = 1u << 4,      // fleet replay: concurrent tests, egress utilization
};

inline constexpr std::uint32_t kAllCategories = 0x1f;

/// The accepted `--trace-categories` tokens, comma-separated — the one
/// authoritative list. CLI usage/error text and docs quote this constant;
/// extend it together with Category and parse_category_mask.
inline constexpr const char* kCategoryListCsv =
    "all,scheduler,link,transport,protocol,fleet";

[[nodiscard]] const char* to_string(Category category) noexcept;

/// Parses a comma-separated category list ("scheduler,link,protocol") into a
/// mask; "all" selects everything. Returns nullopt on an unknown name; when
/// `bad_token` is non-null it receives the first offending token so callers
/// can name it in their error message.
[[nodiscard]] std::optional<std::uint32_t> parse_category_mask(
    std::string_view csv, std::string* bad_token = nullptr);

/// How an event renders in the Chrome exporter: a point-in-time marker or a
/// sample of a numeric series (cwnd, queue depth, probing rate).
enum class EventKind : std::uint8_t {
  kInstant,
  kCounter,
};

struct TraceEvent {
  core::SimTime ts = 0;
  Category category = Category::kScheduler;
  EventKind kind = EventKind::kInstant;
  /// Must point at static storage (a string literal).
  const char* name = "";
  /// Correlates related events: flow id, session nonce, server index.
  std::uint64_t id = 0;
  /// Numeric payload: rate in Mbps, queue bytes, sample value, ...
  double value = 0.0;
};

class Tracer {
 public:
  /// `capacity` is the ring size in events; once full, the oldest events are
  /// overwritten (and counted in dropped()).
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when the tracer retains events of this category. Instrumentation
  /// sites check this before computing event payloads.
  [[nodiscard]] bool wants(Category category) const noexcept {
    return (mask_ & static_cast<std::uint32_t>(category)) != 0;
  }

  void set_category_mask(std::uint32_t mask) noexcept { mask_ = mask; }
  [[nodiscard]] std::uint32_t category_mask() const noexcept { return mask_; }

  /// Rotation sink: when set, a full ring flushes its whole contents
  /// (oldest first) through this callback and starts over, instead of
  /// overwriting the oldest event. Flushed events count in spilled(), not
  /// dropped(). Wired to a SpillWriter segment per flush (obs/spill.hpp).
  using SpillFn = std::function<void(const TraceEvent*, std::size_t)>;
  void set_spill(SpillFn fn) { spill_ = std::move(fn); }

  /// Records one event (unconditionally — callers gate on wants()). Not
  /// noexcept: the first record() allocates the ring and may throw bad_alloc.
  void record(core::SimTime ts, Category category, EventKind kind, const char* name,
              std::uint64_t id, double value) {
    if (ring_.empty()) {
      ensure_ring();
    } else if (size_ == ring_.size() && spill_) {
      flush_spill();
    }
    TraceEvent& slot = ring_[head_];
    slot.ts = ts;
    slot.category = category;
    slot.kind = kind;
    slot.name = name;
    slot.id = id;
    slot.value = value;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  /// Events currently retained.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring wrapped (with no spill sink).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Events flushed to the spill sink instead of being overwritten.
  [[nodiscard]] std::uint64_t spilled() const noexcept { return spilled_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Appends every retained event of `src` (oldest first) and carries its
  /// drop and spill counts over. Used to fold per-shard tracers into one
  /// artifact in shard order: merging one full source into an empty
  /// same-capacity ring reproduces it byte for byte, retention and drop
  /// count included.
  void merge_from(const Tracer& src);

  /// Reorders the retained events into their content order — (ts, name, id,
  /// kind, category, value), names by string value — discarding the record
  /// order. A sharded merge concatenates shards in shard order, which
  /// depends on the partition; after this sort the retained set renders
  /// identically for every shard count that retains the same events (the
  /// sampled-artifact determinism contract, DESIGN.md §12).
  void sort_canonical();

  /// In-memory footprint of the ring (for budget accounting): zero until
  /// the lazy ring is allocated.
  [[nodiscard]] std::uint64_t approx_bytes() const noexcept {
    return ring_.capacity() * sizeof(TraceEvent);
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    spilled_ = 0;
  }

  static constexpr std::size_t kDefaultCapacity = 1u << 18;

 private:
  /// Cold path: allocates the ring (capacity_ × 40 bytes) on first use.
  void ensure_ring();
  /// Cold path: rotates the full ring out through the spill sink.
  void flush_spill();

  // The ring (capacity_ × 40 bytes, ~10 MB at the default) is allocated on
  // the first record(), not at construction: a fleet shard's Hub mirror that
  // never traces (mask off, or a category nothing touches) costs no memory.
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t spilled_ = 0;
  std::uint32_t mask_ = kAllCategories;
  SpillFn spill_;
  /// Scratch for flush_spill's oldest-first rotation; reused across flushes.
  std::vector<TraceEvent> spill_scratch_;
};

}  // namespace swiftest::obs
