#include "obs/diff/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <string_view>
#include <utility>

#include "obs/export.hpp"
#include "obs/health/report.hpp"
#include "obs/hostprof/report.hpp"
#include "obs/json_util.hpp"
#include "obs/span/critical_path.hpp"
#include "obs/span/json.hpp"

namespace swiftest::obs::diff {
namespace {

/// Sections that never gate: they attribute a difference, they are not one.
bool is_info_section(std::string_view section) {
  return section == "config" || section == "run" || section == "host" ||
         section == "hostprof" || section == "summary.hostprof";
}

/// Host-time artifacts: content is wall-clock-dependent by design, so their
/// hashes are reported but never gated.
bool is_info_artifact(std::string_view name) {
  return name.rfind("prof", 0) == 0 || name == "progress";
}

/// Integer-semantics summary keys compare exactly; everything else (means,
/// quantiles, fractions) gets the relative tolerance.
bool is_exact_key(std::string_view key) {
  static constexpr std::string_view kExact[] = {
      "events", "dropped", "spilled", "spans",  "open", "segments",
      "tests",  "count",   "bytes",   "rows",   "ok",   "violations"};
  for (const std::string_view exact : kExact) {
    if (key == exact) return true;
  }
  if (key.rfind("cat.", 0) == 0 || key.rfind("counter.", 0) == 0) return true;
  if (key.size() >= 6 && key.substr(key.size() - 6) == ".count") return true;
  return false;
}

std::map<std::string, double> to_value_map(const manifest::ValueList& list) {
  std::map<std::string, double> out;
  for (const auto& [key, value] : list) out[key] = value;
  return out;
}

/// Collects per-stage critical seconds and the summed root durations from an
/// attribution report.
struct StageTotals {
  std::map<std::string, double> critical_s;
  double total_s = 0.0;
};

StageTotals stage_totals(const span::AttributionReport& report) {
  StageTotals totals;
  for (const span::StageStat& stage : report.stages) {
    totals.critical_s[stage.name] += stage.critical_s;
  }
  for (const span::TraceAttribution& trace : report.traces) {
    totals.total_s += trace.duration_s;
  }
  return totals;
}

class Differ {
 public:
  Differ(const manifest::RunManifest& a, const manifest::RunManifest& b,
         const DiffOptions& options)
      : a_(a), b_(b), options_(options) {}

  DiffReport run(const std::string& path_a, const std::string& path_b) {
    report_.path_a = path_a;
    report_.path_b = path_b;
    report_.command_a = a_.command;
    report_.command_b = b_.command;
    report_.build_a = a_.build;
    report_.build_b = b_.build;

    diff_run_identity();
    diff_config();
    diff_artifacts();
    diff_summaries();
    diff_metrics_fallback();
    diff_health_cells();
    diff_trace_deep();
    diff_stage_attribution();
    diff_hostprof_deep();
    diff_slos();
    diff_bench();
    diff_host();

    report_.identical = !semantic_difference_;
    return std::move(report_);
  }

 private:
  // -- recording -----------------------------------------------------------

  SectionCounts& counts(const std::string& section) {
    return report_.sections[section];
  }

  void note_entry(const std::string& section, std::string key, std::string note) {
    DiffEntry entry;
    entry.section = section;
    entry.key = std::move(key);
    entry.numeric = false;
    entry.status = DiffStatus::kInfo;
    entry.note = std::move(note);
    counts(section).info += 1;
    report_.entries.push_back(std::move(entry));
  }

  void compare_numeric(const std::string& section, const std::string& key,
                       double a, double b, bool exact, std::string note = "") {
    SectionCounts& tally = counts(section);
    tally.checked += 1;
    if (a == b) {
      tally.identical += 1;
      return;
    }
    const bool info = is_info_section(section);
    if (!info) semantic_difference_ = true;

    DiffEntry entry;
    entry.section = section;
    entry.key = key;
    entry.a = a;
    entry.b = b;
    entry.delta = b - a;
    entry.rel = std::abs(entry.delta) / std::max(std::abs(a), std::abs(b));
    entry.note = std::move(note);
    if (info) {
      entry.status = DiffStatus::kInfo;
      tally.info += 1;
    } else if (!exact && !options_.expect_identical &&
               entry.rel <= options_.rel_tolerance) {
      entry.status = DiffStatus::kWithinTolerance;
      tally.within_tolerance += 1;
    } else {
      entry.status = DiffStatus::kRegressed;
      tally.regressed += 1;
      report_.regressions += 1;
    }
    report_.entries.push_back(std::move(entry));
  }

  void compare_text(const std::string& section, const std::string& key,
                    const std::string& a, const std::string& b,
                    DiffStatus on_mismatch, std::string note = "") {
    SectionCounts& tally = counts(section);
    tally.checked += 1;
    if (a == b) {
      tally.identical += 1;
      return;
    }
    if (!is_info_section(section)) semantic_difference_ = true;

    DiffEntry entry;
    entry.section = section;
    entry.key = key;
    entry.numeric = false;
    entry.a_text = a;
    entry.b_text = b;
    entry.status = on_mismatch;
    entry.note = std::move(note);
    switch (on_mismatch) {
      case DiffStatus::kIdentical:
      case DiffStatus::kWithinTolerance:
        tally.within_tolerance += 1;
        break;
      case DiffStatus::kRegressed:
        tally.regressed += 1;
        report_.regressions += 1;
        break;
      case DiffStatus::kInfo:
        tally.info += 1;
        break;
    }
    report_.entries.push_back(std::move(entry));
  }

  /// Compares the union of two value lists under the per-key tolerance
  /// rules. Keys present on only one side compare against 0 with a note.
  void compare_value_lists(const std::string& section,
                           const manifest::ValueList& list_a,
                           const manifest::ValueList& list_b) {
    const std::map<std::string, double> map_a = to_value_map(list_a);
    const std::map<std::string, double> map_b = to_value_map(list_b);
    std::set<std::string> keys;
    for (const auto& [key, value] : map_a) keys.insert(key);
    for (const auto& [key, value] : map_b) keys.insert(key);
    for (const std::string& key : keys) {
      const auto it_a = map_a.find(key);
      const auto it_b = map_b.find(key);
      std::string note;
      if (it_a == map_a.end()) note = "only in B";
      if (it_b == map_b.end()) note = "only in A";
      compare_numeric(section, key, it_a == map_a.end() ? 0.0 : it_a->second,
                      it_b == map_b.end() ? 0.0 : it_b->second,
                      is_exact_key(key), std::move(note));
    }
  }

  // -- sections ------------------------------------------------------------

  void diff_run_identity() {
    compare_text("run", "command", a_.command, b_.command, DiffStatus::kInfo,
                 "runs come from different commands");
    compare_text("run", "build", a_.build, b_.build, DiffStatus::kInfo,
                 "runs come from different builds");
  }

  void diff_config() {
    std::set<std::string> keys;
    for (const auto& [key, value] : a_.config) keys.insert(key);
    for (const auto& [key, value] : b_.config) keys.insert(key);
    for (const std::string& key : keys) {
      const std::optional<std::string> value_a = a_.config_value(key);
      const std::optional<std::string> value_b = b_.config_value(key);
      compare_text("config", key, value_a.value_or("<absent>"),
                   value_b.value_or("<absent>"), DiffStatus::kInfo,
                   "config drift — context for the deltas below");
    }
  }

  void diff_artifacts() {
    std::set<std::string> names;
    for (const manifest::ArtifactRecord& artifact : a_.artifacts) {
      names.insert(artifact.name);
    }
    for (const manifest::ArtifactRecord& artifact : b_.artifacts) {
      names.insert(artifact.name);
    }
    for (const std::string& name : names) {
      const manifest::ArtifactRecord* artifact_a = a_.find_artifact(name);
      const manifest::ArtifactRecord* artifact_b = b_.find_artifact(name);
      const bool info = is_info_artifact(name);
      const std::string section = "artifact";
      if (artifact_a == nullptr || artifact_b == nullptr) {
        compare_text(section, name + ".present",
                     artifact_a != nullptr ? "yes" : "no",
                     artifact_b != nullptr ? "yes" : "no",
                     info ? DiffStatus::kInfo : DiffStatus::kRegressed,
                     "artifact written by only one run");
        continue;
      }
      if (info) {
        compare_text(section, name + ".hash", artifact_a->hash,
                     artifact_b->hash, DiffStatus::kInfo,
                     "host-time artifact — informational");
        continue;
      }
      std::string note;
      if (artifact_a->hash != artifact_b->hash) {
        note = "rows " + std::to_string(artifact_a->rows) + " -> " +
               std::to_string(artifact_b->rows) + ", bytes " +
               std::to_string(artifact_a->bytes) + " -> " +
               std::to_string(artifact_b->bytes) +
               "; see the semantic sections for what moved";
      }
      compare_text(section, name + ".hash", artifact_a->hash, artifact_b->hash,
                   options_.expect_identical ? DiffStatus::kRegressed
                                             : DiffStatus::kInfo,
                   std::move(note));
    }
  }

  void diff_summaries() {
    std::set<std::string> layers;
    for (const auto& [layer, values] : a_.summaries) layers.insert(layer);
    for (const auto& [layer, values] : b_.summaries) layers.insert(layer);
    static const manifest::ValueList kEmpty;
    for (const std::string& layer : layers) {
      const manifest::ValueList* values_a = a_.find_summary(layer);
      const manifest::ValueList* values_b = b_.find_summary(layer);
      compare_value_lists("summary." + layer,
                          values_a != nullptr ? *values_a : kEmpty,
                          values_b != nullptr ? *values_b : kEmpty);
    }
  }

  /// When a manifest predates summary lines, reconstruct the metrics
  /// summary from the metrics artifact so the diff still has the section.
  void diff_metrics_fallback() {
    if (a_.find_summary("metrics") != nullptr ||
        b_.find_summary("metrics") != nullptr || !options_.load_artifacts) {
      return;
    }
    const manifest::ArtifactRecord* artifact_a = a_.find_artifact("metrics");
    const manifest::ArtifactRecord* artifact_b = b_.find_artifact("metrics");
    if (artifact_a == nullptr || artifact_b == nullptr) return;
    const std::optional<MetricsSnapshot> snapshot_a =
        load_metrics_file(artifact_a->path);
    const std::optional<MetricsSnapshot> snapshot_b =
        load_metrics_file(artifact_b->path);
    if (!snapshot_a.has_value() || !snapshot_b.has_value()) {
      note_entry("summary.metrics", "artifacts",
                 "metrics artifacts could not be loaded; no metrics deltas");
      return;
    }
    compare_value_lists("summary.metrics", summarize_for_manifest(*snapshot_a),
                        summarize_for_manifest(*snapshot_b));
  }

  void diff_health_cells() {
    if (!options_.load_artifacts) return;
    const manifest::ArtifactRecord* artifact_a = a_.find_artifact("health");
    const manifest::ArtifactRecord* artifact_b = b_.find_artifact("health");
    if (artifact_a == nullptr || artifact_b == nullptr) return;
    const std::optional<health::HealthArtifact> health_a =
        health::load_health_file(artifact_a->path);
    const std::optional<health::HealthArtifact> health_b =
        health::load_health_file(artifact_b->path);
    if (!health_a.has_value() || !health_b.has_value()) {
      note_entry("health", "artifacts",
                 "health artifacts unavailable — falling back to the "
                 "summary.health section");
      return;
    }
    std::set<std::pair<std::string, std::string>> cells;
    for (const auto& [metric, dims] : health_a->metrics) {
      for (const auto& [dim, stats] : dims) cells.insert({metric, dim});
    }
    for (const auto& [metric, dims] : health_b->metrics) {
      for (const auto& [dim, stats] : dims) cells.insert({metric, dim});
    }
    static const health::AggregateStats kZero;
    for (const auto& [metric, dim] : cells) {
      const auto stats_of = [&](const health::HealthArtifact& artifact)
          -> const health::AggregateStats& {
        const auto metric_it = artifact.metrics.find(metric);
        if (metric_it == artifact.metrics.end()) return kZero;
        const auto dim_it = metric_it->second.find(dim);
        return dim_it == metric_it->second.end() ? kZero : dim_it->second;
      };
      const health::AggregateStats& cell_a = stats_of(*health_a);
      const health::AggregateStats& cell_b = stats_of(*health_b);
      const std::string prefix = metric + "[" + dim + "]";
      compare_numeric("health", prefix + ".count",
                      static_cast<double>(cell_a.count),
                      static_cast<double>(cell_b.count), /*exact=*/true);
      compare_numeric("health", prefix + ".mean", cell_a.mean, cell_b.mean,
                      /*exact=*/false);
      compare_numeric("health", prefix + ".p50", cell_a.p50, cell_b.p50,
                      /*exact=*/false);
      compare_numeric("health", prefix + ".p95", cell_a.p95, cell_b.p95,
                      /*exact=*/false);
      compare_numeric("health", prefix + ".p99", cell_a.p99, cell_b.p99,
                      /*exact=*/false);
    }
  }

  void diff_trace_deep() {
    if (!options_.load_artifacts) return;
    const manifest::ArtifactRecord* artifact_a = a_.find_artifact("trace_jsonl");
    const manifest::ArtifactRecord* artifact_b = b_.find_artifact("trace_jsonl");
    if (artifact_a == nullptr || artifact_b == nullptr) return;
    const std::optional<TraceArtifactSummary> trace_a =
        load_trace_jsonl_file(artifact_a->path);
    const std::optional<TraceArtifactSummary> trace_b =
        load_trace_jsonl_file(artifact_b->path);
    if (!trace_a.has_value() || !trace_b.has_value()) {
      note_entry("trace", "artifacts",
                 "trace artifacts unavailable — falling back to the "
                 "summary.trace section");
      return;
    }
    compare_numeric("trace", "events", static_cast<double>(trace_a->events),
                    static_cast<double>(trace_b->events), /*exact=*/true);
    std::set<std::string> categories;
    for (const auto& [name, count] : trace_a->per_category)
      categories.insert(name);
    for (const auto& [name, count] : trace_b->per_category)
      categories.insert(name);
    const auto count_in = [](const std::map<std::string, std::uint64_t>& map,
                             const std::string& key) {
      const auto it = map.find(key);
      return it == map.end() ? 0.0 : static_cast<double>(it->second);
    };
    for (const std::string& category : categories) {
      compare_numeric("trace", "cat." + category,
                      count_in(trace_a->per_category, category),
                      count_in(trace_b->per_category, category),
                      /*exact=*/true);
    }
    std::set<std::string> names;
    for (const auto& [name, count] : trace_a->per_name) names.insert(name);
    for (const auto& [name, count] : trace_b->per_name) names.insert(name);
    for (const std::string& name : names) {
      compare_numeric("trace", "event." + name,
                      count_in(trace_a->per_name, name),
                      count_in(trace_b->per_name, name), /*exact=*/true);
    }
  }

  void diff_stage_attribution() {
    if (!options_.load_artifacts) return;
    const manifest::ArtifactRecord* artifact_a = a_.find_artifact("spans");
    const manifest::ArtifactRecord* artifact_b = b_.find_artifact("spans");
    if (artifact_a == nullptr || artifact_b == nullptr) return;
    const std::optional<std::vector<span::SpanData>> spans_a =
        span::load_spans_file(artifact_a->path);
    const std::optional<std::vector<span::SpanData>> spans_b =
        span::load_spans_file(artifact_b->path);
    if (!spans_a.has_value() || !spans_b.has_value()) {
      note_entry("stage", "artifacts",
                 "span artifacts unavailable — no stage-delta attribution");
      return;
    }
    const StageTotals totals_a = stage_totals(span::analyze_spans(*spans_a));
    const StageTotals totals_b = stage_totals(span::analyze_spans(*spans_b));

    report_.has_stage_attribution = true;
    report_.total_time_a_s = totals_a.total_s;
    report_.total_time_b_s = totals_b.total_s;
    report_.total_delta_s = totals_b.total_s - totals_a.total_s;

    std::set<std::string> stage_names;
    for (const auto& [name, seconds] : totals_a.critical_s)
      stage_names.insert(name);
    for (const auto& [name, seconds] : totals_b.critical_s)
      stage_names.insert(name);
    for (const std::string& name : stage_names) {
      const auto it_a = totals_a.critical_s.find(name);
      const auto it_b = totals_b.critical_s.find(name);
      StageDelta stage;
      stage.name = name;
      stage.critical_a_s = it_a == totals_a.critical_s.end() ? 0.0 : it_a->second;
      stage.critical_b_s = it_b == totals_b.critical_s.end() ? 0.0 : it_b->second;
      stage.delta_s = stage.critical_b_s - stage.critical_a_s;
      report_.stage_delta_sum_s += stage.delta_s;
      report_.stages.push_back(std::move(stage));

      compare_numeric("stage", name + ".critical_s",
                      report_.stages.back().critical_a_s,
                      report_.stages.back().critical_b_s, /*exact=*/false);
    }
    for (StageDelta& stage : report_.stages) {
      stage.share = report_.total_delta_s == 0.0
                        ? 0.0
                        : stage.delta_s / report_.total_delta_s;
    }
    std::stable_sort(report_.stages.begin(), report_.stages.end(),
                     [](const StageDelta& lhs, const StageDelta& rhs) {
                       return std::abs(lhs.delta_s) > std::abs(rhs.delta_s);
                     });
    if (!report_.stages.empty() && report_.stages.front().delta_s != 0.0) {
      report_.top_stage = report_.stages.front().name;
    }
  }

  void diff_hostprof_deep() {
    if (!options_.load_artifacts) return;
    const manifest::ArtifactRecord* artifact_a = a_.find_artifact("prof");
    const manifest::ArtifactRecord* artifact_b = b_.find_artifact("prof");
    if (artifact_a == nullptr || artifact_b == nullptr) return;
    const std::optional<hostprof::ProfData> prof_a =
        hostprof::load_prof_file(artifact_a->path);
    const std::optional<hostprof::ProfData> prof_b =
        hostprof::load_prof_file(artifact_b->path);
    if (!prof_a.has_value() || !prof_b.has_value()) return;
    const hostprof::ProfReport report_a = hostprof::analyze_prof(*prof_a);
    const hostprof::ProfReport report_b = hostprof::analyze_prof(*prof_b);
    compare_numeric("hostprof", "wall_ms",
                    static_cast<double>(report_a.wall_ns) / 1e6,
                    static_cast<double>(report_b.wall_ns) / 1e6,
                    /*exact=*/false);
    compare_numeric("hostprof", "serial_fraction", report_a.serial_fraction,
                    report_b.serial_fraction, /*exact=*/false);
    compare_numeric("hostprof", "parallel_efficiency",
                    report_a.parallel_efficiency, report_b.parallel_efficiency,
                    /*exact=*/false);
    compare_numeric("hostprof", "shard_imbalance", report_a.shard_imbalance,
                    report_b.shard_imbalance, /*exact=*/false);
  }

  void diff_slos() {
    std::set<std::string> keys;
    const auto slo_key = [](const manifest::SloVerdict& slo) {
      return slo.name + "[" + slo.dimension + "]." + slo.stat;
    };
    std::map<std::string, const manifest::SloVerdict*> map_a;
    std::map<std::string, const manifest::SloVerdict*> map_b;
    for (const manifest::SloVerdict& slo : a_.slos) {
      map_a[slo_key(slo)] = &slo;
      keys.insert(slo_key(slo));
    }
    for (const manifest::SloVerdict& slo : b_.slos) {
      map_b[slo_key(slo)] = &slo;
      keys.insert(slo_key(slo));
    }
    for (const std::string& key : keys) {
      const auto it_a = map_a.find(key);
      const auto it_b = map_b.find(key);
      const std::string status_a =
          it_a == map_a.end() ? "<absent>" : it_a->second->status;
      const std::string status_b =
          it_b == map_b.end() ? "<absent>" : it_b->second->status;
      const bool newly_violated = status_b == "violated" && status_a != "violated";
      compare_text("slo", key, status_a, status_b,
                   newly_violated ? DiffStatus::kRegressed : DiffStatus::kInfo,
                   newly_violated ? "objective newly violated in B"
                                  : "verdict changed");
    }
  }

  void diff_bench() { compare_value_lists("bench", a_.bench, b_.bench); }

  void diff_host() { compare_value_lists("host", a_.host, b_.host); }

  const manifest::RunManifest& a_;
  const manifest::RunManifest& b_;
  const DiffOptions& options_;
  DiffReport report_;
  bool semantic_difference_ = false;
};

void append_entry_json(std::string& out, const DiffEntry& entry) {
  out += "{\"section\":";
  append_json_string(out, entry.section);
  out += ",\"key\":";
  append_json_string(out, entry.key);
  out += ",\"status\":";
  append_json_string(out, to_string(entry.status));
  if (entry.numeric) {
    out += ",\"a\":";
    append_double(out, entry.a);
    out += ",\"b\":";
    append_double(out, entry.b);
    out += ",\"delta\":";
    append_double(out, entry.delta);
    out += ",\"rel\":";
    append_double(out, entry.rel);
  } else {
    out += ",\"a\":";
    append_json_string(out, entry.a_text);
    out += ",\"b\":";
    append_json_string(out, entry.b_text);
  }
  if (!entry.note.empty()) {
    out += ",\"note\":";
    append_json_string(out, entry.note);
  }
  out += '}';
}

std::string format_seconds(double seconds) {
  std::string out;
  append_double(out, seconds);
  return out;
}

}  // namespace

const char* to_string(DiffStatus status) {
  switch (status) {
    case DiffStatus::kIdentical:
      return "identical";
    case DiffStatus::kWithinTolerance:
      return "within-tolerance";
    case DiffStatus::kRegressed:
      return "regressed";
    case DiffStatus::kInfo:
      return "info";
  }
  return "unknown";
}

DiffReport diff_runs(const manifest::RunManifest& a,
                     const manifest::RunManifest& b, const DiffOptions& options,
                     const std::string& path_a, const std::string& path_b) {
  return Differ(a, b, options).run(path_a, path_b);
}

void write_diff_json(const DiffReport& report, std::ostream& out) {
  std::string body;
  body.reserve(4096);
  body += "{\"diff\":{\"a\":";
  append_json_string(body, report.path_a);
  body += ",\"b\":";
  append_json_string(body, report.path_b);
  body += ",\"command_a\":";
  append_json_string(body, report.command_a);
  body += ",\"command_b\":";
  append_json_string(body, report.command_b);
  body += ",\"build_a\":";
  append_json_string(body, report.build_a);
  body += ",\"build_b\":";
  append_json_string(body, report.build_b);
  body += ",\"identical\":";
  body += report.identical ? "true" : "false";
  body += ",\"regressions\":";
  append_u64(body, report.regressions);
  body += "},\"sections\":{";
  bool first = true;
  for (const auto& [name, tally] : report.sections) {
    if (!first) body += ',';
    first = false;
    append_json_string(body, name);
    body += ":{\"checked\":";
    append_u64(body, tally.checked);
    body += ",\"identical\":";
    append_u64(body, tally.identical);
    body += ",\"within_tolerance\":";
    append_u64(body, tally.within_tolerance);
    body += ",\"regressed\":";
    append_u64(body, tally.regressed);
    body += ",\"info\":";
    append_u64(body, tally.info);
    body += '}';
  }
  body += "},\"entries\":[";
  first = true;
  for (const DiffEntry& entry : report.entries) {
    if (!first) body += ',';
    first = false;
    append_entry_json(body, entry);
  }
  body += ']';
  if (report.has_stage_attribution) {
    body += ",\"stage_attribution\":{\"total_a_s\":";
    append_double(body, report.total_time_a_s);
    body += ",\"total_b_s\":";
    append_double(body, report.total_time_b_s);
    body += ",\"total_delta_s\":";
    append_double(body, report.total_delta_s);
    body += ",\"stage_delta_sum_s\":";
    append_double(body, report.stage_delta_sum_s);
    body += ",\"top_stage\":";
    append_json_string(body, report.top_stage);
    body += ",\"stages\":[";
    first = true;
    for (const StageDelta& stage : report.stages) {
      if (!first) body += ',';
      first = false;
      body += "{\"name\":";
      append_json_string(body, stage.name);
      body += ",\"a_s\":";
      append_double(body, stage.critical_a_s);
      body += ",\"b_s\":";
      append_double(body, stage.critical_b_s);
      body += ",\"delta_s\":";
      append_double(body, stage.delta_s);
      body += ",\"share\":";
      append_double(body, stage.share);
      body += '}';
    }
    body += "]}";
  }
  body += "}\n";
  out << body;
}

void write_diff_markdown(const DiffReport& report, std::ostream& out) {
  out << "# Run diff\n\n";
  out << "- A: `" << report.path_a << "` (" << report.command_a << ", build "
      << report.build_a << ")\n";
  out << "- B: `" << report.path_b << "` (" << report.command_b << ", build "
      << report.build_b << ")\n";
  if (report.identical) {
    out << "- verdict: **identical** — no semantic differences\n";
  } else if (report.regressions == 0) {
    out << "- verdict: **within tolerance** — differences explained below\n";
  } else {
    out << "- verdict: **regressed** — " << report.regressions
        << " gated difference(s)\n";
  }
  out << "\n## Sections\n\n";
  out << "| section | checked | identical | within tol | regressed | info |\n";
  out << "|---|---:|---:|---:|---:|---:|\n";
  for (const auto& [name, tally] : report.sections) {
    out << "| " << name << " | " << tally.checked << " | " << tally.identical
        << " | " << tally.within_tolerance << " | " << tally.regressed << " | "
        << tally.info << " |\n";
  }

  if (report.has_stage_attribution) {
    out << "\n## Stage-delta attribution\n\n";
    out << "- total time A: " << format_seconds(report.total_time_a_s)
        << " s, B: " << format_seconds(report.total_time_b_s)
        << " s, delta: " << format_seconds(report.total_delta_s) << " s\n";
    out << "- per-stage critical deltas sum to "
        << format_seconds(report.stage_delta_sum_s) << " s\n";
    if (!report.top_stage.empty()) {
      out << "- largest mover: **" << report.top_stage << "**\n";
    }
    out << "\n| stage | critical A (s) | critical B (s) | delta (s) | share |\n";
    out << "|---|---:|---:|---:|---:|\n";
    for (const StageDelta& stage : report.stages) {
      out << "| " << stage.name << " | " << format_seconds(stage.critical_a_s)
          << " | " << format_seconds(stage.critical_b_s) << " | "
          << format_seconds(stage.delta_s) << " | "
          << format_seconds(stage.share) << " |\n";
    }
  }

  out << "\n## Differences\n\n";
  bool any = false;
  std::string current_section;
  std::size_t in_section = 0;
  constexpr std::size_t kMaxPerSection = 20;
  for (const DiffEntry& entry : report.entries) {
    if (entry.section != current_section) {
      if (!current_section.empty() && in_section > kMaxPerSection) {
        out << "- ... " << (in_section - kMaxPerSection) << " more in "
            << current_section << "\n";
      }
      out << "\n### " << entry.section << "\n\n";
      current_section = entry.section;
      in_section = 0;
    }
    ++in_section;
    if (in_section > kMaxPerSection) continue;
    any = true;
    out << "- `" << entry.key << "` [" << to_string(entry.status) << "] ";
    if (entry.numeric) {
      out << format_seconds(entry.a) << " -> " << format_seconds(entry.b)
          << " (delta " << format_seconds(entry.delta) << ", rel "
          << format_seconds(entry.rel) << ")";
    } else {
      out << "`" << entry.a_text << "` -> `" << entry.b_text << "`";
    }
    if (!entry.note.empty()) out << " — " << entry.note;
    out << "\n";
  }
  if (!current_section.empty() && in_section > kMaxPerSection) {
    out << "- ... " << (in_section - kMaxPerSection) << " more in "
        << current_section << "\n";
  }
  if (!any) {
    out << "(none — every compared value identical)\n";
  }
}

}  // namespace swiftest::obs::diff
