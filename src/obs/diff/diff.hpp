// Semantic cross-run diffing: two RunManifests in, one explained verdict out.
//
// `swiftest-cli obs diff A B` loads two manifests (obs/manifest/manifest.hpp)
// plus the artifacts they point at and produces a DiffReport that replaces
// "the bytes differ" with *what* differs and by how much:
//
//   * config drift — which resolved settings differ (attribution context,
//     never a regression by itself);
//   * artifact identity — content hash / rows / bytes per logical artifact
//     name, path-independent;
//   * metrics deltas — every counter, gauge, and histogram aggregate under
//     per-metric tolerance rules (counts are exact, statistics tolerant);
//   * health quantile drift — count/mean/p50/p95/p99 per (metric, dimension
//     cell), from the health artifacts when loadable;
//   * span stage-delta attribution — both runs' span artifacts through the
//     critical-path analyzer (obs/span/critical_path.hpp); per-stage
//     critical-time deltas that sum to the observed total-time delta, naming
//     the stage that moved;
//   * trace deltas — per-category and per-event-name counts;
//   * host-profile deltas — wall, serial fraction, parallel efficiency:
//     always informational (host time never gates).
//
// Every compared entry is classified by the taxonomy in DESIGN.md §14:
//   kIdentical        exactly equal;
//   kWithinTolerance  differs, inside the entry's tolerance rule;
//   kRegressed        differs beyond tolerance (in either direction — the
//                     diff flags change, the reader judges its sign);
//   kInfo             reported for attribution, never gated (host time,
//                     config drift, paths).
//
// Gating: `regressions` counts gated kRegressed entries; with
// expect_identical every gated non-identical entry counts. The CLI maps a
// non-zero count to exit code 4.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/manifest/manifest.hpp"

namespace swiftest::obs::diff {

enum class DiffStatus { kIdentical, kWithinTolerance, kRegressed, kInfo };

[[nodiscard]] const char* to_string(DiffStatus status);

/// One compared fact. Numeric entries carry a/b/delta/rel; text entries
/// (config values, hashes, SLO statuses) carry a_text/b_text.
struct DiffEntry {
  std::string section;  // "config", "artifact", "metrics", "health", ...
  std::string key;
  bool numeric = true;
  double a = 0.0;
  double b = 0.0;
  double delta = 0.0;  // b - a
  double rel = 0.0;    // |delta| / max(|a|, |b|), 0 when both are 0
  std::string a_text;
  std::string b_text;
  DiffStatus status = DiffStatus::kIdentical;
  std::string note;
};

/// Per-section tally. `checked` counts every comparison made, including the
/// identical ones that produce no DiffEntry.
struct SectionCounts {
  std::size_t checked = 0;
  std::size_t identical = 0;
  std::size_t within_tolerance = 0;
  std::size_t regressed = 0;
  std::size_t info = 0;
};

/// One stage of the critical-path delta attribution, |delta| descending.
struct StageDelta {
  std::string name;
  double critical_a_s = 0.0;
  double critical_b_s = 0.0;
  double delta_s = 0.0;  // b - a
  double share = 0.0;    // delta_s / total_delta_s (0 when total is 0)
};

struct DiffOptions {
  /// Gate on any semantic difference, tolerant or not (the CI jobs-invariance
  /// gate). Host-time and config sections stay informational.
  bool expect_identical = false;
  /// Relative tolerance for statistical values (means, quantiles, bench).
  /// Counts are always exact.
  double rel_tolerance = 0.05;
  /// Read the artifacts the manifests point at (health, spans, traces,
  /// prof) for deep sections. When false — or when a file is missing — the
  /// diff degrades to manifest summaries and says so in a note.
  bool load_artifacts = true;
};

struct DiffReport {
  std::string path_a;
  std::string path_b;
  std::string command_a;
  std::string command_b;
  std::string build_a;
  std::string build_b;
  /// Every non-identical comparison plus informational context, in section
  /// order. Identical entries are tallied in `sections`, not listed.
  std::vector<DiffEntry> entries;
  std::map<std::string, SectionCounts> sections;

  /// Critical-path stage-delta attribution (present when both runs carry a
  /// loadable spans artifact).
  bool has_stage_attribution = false;
  double total_time_a_s = 0.0;      // sum of root-span durations, run A
  double total_time_b_s = 0.0;      // sum of root-span durations, run B
  double total_delta_s = 0.0;       // b - a
  double stage_delta_sum_s = 0.0;   // sum of per-stage critical deltas
  std::vector<StageDelta> stages;   // |delta| descending
  std::string top_stage;            // largest |delta| stage, "" when none

  std::size_t regressions = 0;  // gated failures (see header comment)
  bool identical = false;       // no gated non-identical entries at all
};

/// Compares two runs. `path_a`/`path_b` label the report; artifacts are
/// resolved from the paths recorded inside each manifest.
[[nodiscard]] DiffReport diff_runs(const manifest::RunManifest& a,
                                   const manifest::RunManifest& b,
                                   const DiffOptions& options,
                                   const std::string& path_a = "A",
                                   const std::string& path_b = "B");

/// Deterministic JSON rendering of the full report.
void write_diff_json(const DiffReport& report, std::ostream& out);

/// Markdown rendering: verdict, section table, top entries per section, and
/// the stage-delta attribution table.
void write_diff_markdown(const DiffReport& report, std::ostream& out);

}  // namespace swiftest::obs::diff
