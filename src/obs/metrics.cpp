#include "obs/metrics.hpp"

#include <algorithm>

namespace swiftest::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::add_counts(std::span<const std::uint64_t> counts,
                           std::uint64_t count, double sum) {
  const std::size_t n = std::min(counts.size(), counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += counts[i];
  count_ += count;
  sum_ += sum;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void MetricsRegistry::merge_from(const MetricsSnapshot& src) {
  for (const auto& [name, value] : src.counters) counter(name).inc(value);
  for (const auto& [name, value] : src.gauges) gauge(name).add(value);
  for (const auto& [name, value] : src.histograms) {
    Histogram& h = histogram(name, value.bounds);
    if (h.counts().size() == value.counts.size()) {
      h.add_counts(value.counts, value.count, value.sum);
    } else {
      // Mismatched bucket layouts cannot be combined bucket by bucket; keep
      // the totals so count/sum stay conserved.
      h.add_counts({}, value.count, value.sum);
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.bounds = h->bounds();
    v.counts = h->counts();
    v.count = h->count();
    v.sum = h->sum();
    snap.histograms[name] = std::move(v);
  }
  return snap;
}

}  // namespace swiftest::obs
