#include "obs/spill.hpp"

#include <cstdio>
#include <fstream>

#include "obs/export.hpp"
#include "obs/span/json.hpp"

namespace swiftest::obs {

SpillWriter::SpillWriter(std::string dir, std::string stream, std::size_t shard)
    : dir_(std::move(dir)), stream_(std::move(stream)), shard_(shard) {}

void SpillWriter::write_segment(const std::string& body) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s.shard%04zu.seg%04zu.jsonl",
                stream_.c_str(), shard_, paths_.size());
  const std::string path = dir_ + "/" + name;
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    ok_ = false;
    return;
  }
  file << body;
  if (!file) {
    ok_ = false;
    return;
  }
  bytes_ += body.size();
  paths_.push_back(path);
}

void SpillWriter::write_trace_segment(const TraceEvent* events, std::size_t count) {
  std::string body;
  body.reserve(count * 96);
  for (std::size_t i = 0; i < count; ++i) {
    append_trace_jsonl_line(body, events[i]);
  }
  write_segment(body);
}

void SpillWriter::write_span_segment(const span::SpanRecord* spans,
                                     std::size_t count) {
  std::string body;
  body.reserve(count * 160);
  for (std::size_t i = 0; i < count; ++i) {
    span::append_span_json(body, spans[i]);
    body += '\n';
  }
  write_segment(body);
}

bool concat_segments(const std::vector<std::string>& segment_paths,
                     const std::string& out_path, std::string* error) {
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot write " + out_path;
    return false;
  }
  for (const std::string& path : segment_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path;
      return false;
    }
    out << in.rdbuf();
  }
  return static_cast<bool>(out);
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const SpillWriter& writer) {
  return {
      {"segments", static_cast<double>(writer.segments())},
      {"bytes", static_cast<double>(writer.bytes_written())},
      {"ok", writer.ok() ? 1.0 : 0.0},
  };
}

}  // namespace swiftest::obs
