// Named metrics with cheap handle-based updates.
//
// Components look a metric up once (by name, at bind time) and keep the
// returned handle; hot-path updates are then a single load/increment with no
// string hashing. Handles stay valid for the registry's lifetime (entries
// are never removed and live behind stable pointers). snapshot() deep-copies
// every value, so an exported snapshot is isolated from later updates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace swiftest::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v) noexcept;

  /// Adds another histogram's per-bucket counts (same bounds layout —
  /// `counts.size()` must equal `counts().size()`) plus its count/sum.
  void add_counts(std::span<const std::uint64_t> counts, std::uint64_t count,
                  double sum);

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Point-in-time copy of every registered metric, ordered by name so the
/// JSON export is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned reference remains valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only; later callers share the
  /// existing histogram regardless of the bounds they pass.
  Histogram& histogram(const std::string& name, std::span<const double> bounds);
  Histogram& histogram(const std::string& name, std::initializer_list<double> bounds) {
    return histogram(name, std::span<const double>(bounds.begin(), bounds.size()));
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Folds a snapshot into this registry: counters and gauges add, histogram
  /// bucket counts add elementwise (a histogram absent here is created with
  /// the source's bounds). Gauges are shard-additive by convention — fleet
  /// gauges are either zero at merge time (concurrency high-water gauges end
  /// a run at 0) or meaningful as a sum. Merging into an empty registry
  /// reproduces the source snapshot exactly.
  void merge_from(const MetricsSnapshot& src);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace swiftest::obs
