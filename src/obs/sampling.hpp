// Deterministic whole-test sampling for fleet-scale observability.
//
// At fleet scale (the paper's platform ran 23.6M tests) retaining every
// test's trace events and spans is neither affordable nor useful; what the
// artifacts must stay is *representative* and *reproducible*. A
// SamplingPolicy decides, per test, whether that test's observability is
// retained — keyed on a splitmix64 hash of a stable test identity (the
// global workload draw index, or a wire nonce), never on wall clock, shard
// index, or thread id — so the sampled set is a pure function of (seed,
// workload) and a `--obs-sample 1/N` fleet-day emits byte-identical sampled
// artifacts regardless of `--shards` / `--jobs`.
//
// The policy also owns the memory-budget degradation rule: given a byte
// budget, note_footprint() doubles the sampling denominator (and counts the
// degradation) whenever the observed observability footprint exceeds the
// budget — the run keeps going with a sparser sample instead of OOMing.
// Degradations are keyed on the deterministic in-memory footprint of the
// observability stores, not on process RSS, so a given (workload, shards,
// budget) degrades at the same points on every host.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swiftest::obs {

/// splitmix64 finalizer: the same avalanche permutation deploy::stable_hash64
/// uses for shard assignment. Shared here so sampling decisions are
/// documented as a pure function of the key.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class SamplingPolicy {
 public:
  /// Keep-everything policy (denominator 1).
  SamplingPolicy() = default;

  /// Parses "1/N" or plain "N" into a keep-1-in-N policy ("1/1" and "1"
  /// keep everything). Returns nullopt for malformed specs or N == 0.
  [[nodiscard]] static std::optional<SamplingPolicy> parse(std::string_view spec);

  void set_denominator(std::uint64_t denominator) noexcept {
    denominator_ = denominator == 0 ? 1 : denominator;
  }
  [[nodiscard]] std::uint64_t denominator() const noexcept { return denominator_; }

  /// Salts the hash (set it to the run seed) so two runs with different
  /// seeds sample different test subsets.
  void set_salt(std::uint64_t salt) noexcept { salt_ = salt; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

  /// True when the policy discards anything (denominator > 1).
  [[nodiscard]] bool enabled() const noexcept { return denominator_ > 1; }

  /// Whether the test identified by `key` is retained. Pure: depends only
  /// on (key, salt, current denominator).
  [[nodiscard]] bool sampled(std::uint64_t key) const noexcept {
    if (denominator_ <= 1) return true;
    return splitmix64(key ^ salt_) % denominator_ == 0;
  }

  /// Degradation budget in bytes; 0 disables degradation.
  void set_budget_bytes(std::uint64_t bytes) noexcept { budget_bytes_ = bytes; }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept { return budget_bytes_; }

  /// Reports the current observability footprint. If a budget is set and the
  /// footprint exceeds it, the denominator doubles (halving the retained
  /// fraction of *future* tests) and the degradation is counted. At most one
  /// degradation per call, so periodic checks ratchet down gradually instead
  /// of collapsing to nothing. Returns true when this call degraded.
  bool note_footprint(std::uint64_t bytes) noexcept {
    if (budget_bytes_ == 0 || bytes <= budget_bytes_) return false;
    if (denominator_ >= kMaxDenominator) return false;
    denominator_ *= 2;
    ++degradations_;
    return true;
  }

  /// Times note_footprint() doubled the denominator.
  [[nodiscard]] std::uint64_t degradations() const noexcept { return degradations_; }

  /// "1/N" — the spec string recorded in artifact meta.
  [[nodiscard]] std::string describe() const;

  static constexpr std::uint64_t kMaxDenominator = 1ull << 32;

 private:
  std::uint64_t denominator_ = 1;
  std::uint64_t salt_ = 0;
  std::uint64_t budget_bytes_ = 0;
  std::uint64_t degradations_ = 0;
};

/// The precomputed budget-degradation schedule for one run.
///
/// With a global memory budget and a partition-free executor, degradation can
/// no longer be a live decision made inside whichever shard happens to cross
/// its slice of the budget first — that would make the sampled set depend on
/// the partition. Instead plan() walks the workload once, in global test
/// order, modelling the observability footprint the run will accumulate and
/// doubling the denominator at the same deterministic checkpoints a serial
/// run would: the resulting per-test keep/drop decisions are a pure function
/// of (test count, base policy, budget, per-test cost model), so every chunk
/// asks the schedule instead of mutating a shared policy.
class SampleSchedule {
 public:
  /// A denominator step: tests with index >= from_test sample at 1/denominator
  /// (until the next step).
  struct Step {
    std::uint64_t from_test = 0;
    std::uint64_t denominator = 1;
  };

  /// Cost model for plan(): `base_bytes` is footprint that exists regardless
  /// of sampling (e.g. preallocated trace rings), `sampled_test_bytes` is
  /// paid only by retained tests, `per_test_bytes` by every test (health).
  struct CostModel {
    std::uint64_t base_bytes = 0;
    std::uint64_t sampled_test_bytes = 0;
    std::uint64_t per_test_bytes = 0;
  };

  /// Builds the schedule for `test_count` tests under `policy` (denominator,
  /// salt and budget are read from it; the policy itself is not mutated).
  /// Checkpoints every kCheckpointInterval tests mirror the legacy periodic
  /// note_footprint cadence.
  [[nodiscard]] static SampleSchedule plan(std::uint64_t test_count,
                                           const SamplingPolicy& policy,
                                           const CostModel& model);

  /// Whether the test at global index `test_id` retains observability.
  [[nodiscard]] bool sampled(std::uint64_t test_id) const noexcept;

  /// Denominator in force at `test_id`.
  [[nodiscard]] std::uint64_t denominator_at(std::uint64_t test_id) const noexcept;

  /// True when any test is dropped anywhere in the schedule.
  [[nodiscard]] bool enabled() const noexcept {
    return !steps_.empty() && (steps_.size() > 1 || steps_[0].denominator > 1);
  }

  /// Total budget degradations (denominator doublings) in the plan.
  [[nodiscard]] std::uint64_t degradations() const noexcept { return degradations_; }

  /// Degradations whose trigger checkpoint lies in [begin_test, end_test) —
  /// per-chunk telemetry attribution.
  [[nodiscard]] std::uint64_t degradations_in(std::uint64_t begin_test,
                                              std::uint64_t end_test) const noexcept;

  /// Final "1/N" spec, for artifact meta.
  [[nodiscard]] std::string describe_final() const;

  static constexpr std::uint64_t kCheckpointInterval = 4096;

 private:
  std::vector<Step> steps_;          // from_test ascending; steps_[0].from_test == 0
  std::uint64_t salt_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace swiftest::obs
