#include "obs/json_util.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace swiftest::obs {

void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "\"NaN\"";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  out += '"';
}

}  // namespace swiftest::obs
