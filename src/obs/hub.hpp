// The observability bundle a simulation opts into.
//
// A Hub owns one Tracer, one MetricsRegistry, and one SpanStore. Attaching a
// Hub to a netsim::Scheduler (Scheduler::set_obs) switches on
// instrumentation for every component driven by that scheduler; with no Hub
// attached (the default), every instrumentation site reduces to a branch on
// a null pointer — no allocation, no stores, no formatting.
//
// Attach the Hub before running the simulation. Handle-based metric
// bindings are established lazily at each component's first instrumented
// action, so components constructed before set_obs() still report. The span
// store mirrors begin/end markers into the tracer and per-stage duration
// histograms into the metrics registry (span.stage_seconds/<name>).
#pragma once

#include "obs/metrics.hpp"
#include "obs/span/span.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

struct Hub {
  Hub() { spans.set_sinks(&tracer, &metrics); }
  explicit Hub(std::size_t trace_capacity, std::size_t span_capacity =
                                               span::SpanStore::kDefaultCapacity)
      : tracer(trace_capacity), spans(span_capacity) {
    spans.set_sinks(&tracer, &metrics);
  }

  Tracer tracer;
  MetricsRegistry metrics;
  span::SpanStore spans;
};

}  // namespace swiftest::obs
