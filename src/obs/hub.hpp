// The observability bundle a simulation opts into.
//
// A Hub owns one Tracer, one MetricsRegistry, and one SpanStore. Attaching a
// Hub to a netsim::Scheduler (Scheduler::set_obs) switches on
// instrumentation for every component driven by that scheduler; with no Hub
// attached (the default), every instrumentation site reduces to a branch on
// a null pointer — no allocation, no stores, no formatting.
//
// Attach the Hub before running the simulation. Handle-based metric
// bindings are established lazily at each component's first instrumented
// action, so components constructed before set_obs() still report. The span
// store mirrors begin/end markers into the tracer and per-stage duration
// histograms into the metrics registry (span.stage_seconds/<name>).
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "obs/span/span.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

struct Hub {
  Hub() { spans.set_sinks(&tracer, &metrics); }
  explicit Hub(std::size_t trace_capacity, std::size_t span_capacity =
                                               span::SpanStore::kDefaultCapacity)
      : tracer(trace_capacity), spans(span_capacity) {
    spans.set_sinks(&tracer, &metrics);
  }

  /// A fresh Hub shaped like `like` — same ring/store capacities and tracer
  /// category mask, empty contents. Sharded runs give every shard one of
  /// these so a later merge_from() into `like` is capacity-faithful.
  [[nodiscard]] static std::unique_ptr<Hub> mirror_of(const Hub& like) {
    auto hub = std::make_unique<Hub>(like.tracer.capacity(), like.spans.capacity());
    hub->tracer.set_category_mask(like.tracer.category_mask());
    return hub;
  }

  /// Folds another Hub's contents into this one: trace events append (drop
  /// counts carry over), metric values add, spans append with rebased ids.
  /// Merging shard Hubs in shard order yields one artifact set that is
  /// independent of how the shards were scheduled onto threads; merging one
  /// full Hub into an empty same-shape Hub reproduces it exactly.
  void merge_from(const Hub& other) {
    tracer.merge_from(other.tracer);
    metrics.merge_from(other.metrics.snapshot());
    spans.merge_from(other.spans);
  }

  Tracer tracer;
  MetricsRegistry metrics;
  span::SpanStore spans;
};

}  // namespace swiftest::obs
