// The observability bundle a simulation opts into.
//
// A Hub owns one Tracer and one MetricsRegistry. Attaching a Hub to a
// netsim::Scheduler (Scheduler::set_obs) switches on instrumentation for
// every component driven by that scheduler; with no Hub attached (the
// default), every instrumentation site reduces to a branch on a null
// pointer — no allocation, no stores, no formatting.
//
// Attach the Hub before running the simulation. Handle-based metric
// bindings are established lazily at each component's first instrumented
// action, so components constructed before set_obs() still report.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

struct Hub {
  Hub() = default;
  explicit Hub(std::size_t trace_capacity) : tracer(trace_capacity) {}

  Tracer tracer;
  MetricsRegistry metrics;
};

}  // namespace swiftest::obs
