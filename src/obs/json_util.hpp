// Deterministic JSON rendering primitives shared by every obs exporter.
//
// Doubles are rendered with std::to_chars (shortest round-trip form), so the
// same value always produces the same bytes regardless of stream state. JSON
// has no literal for NaN or the infinities; those render as the quoted
// strings "NaN", "Infinity", and "-Infinity" so the emitted document stays
// parseable by any conforming reader instead of containing bare `nan`/`inf`
// tokens.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace swiftest::obs {

/// Appends a finite double in shortest round-trip decimal form; non-finite
/// values render as the quoted strings "NaN" / "Infinity" / "-Infinity".
void append_double(std::string& out, double v);

void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes, and
/// control characters.
void append_json_string(std::string& out, std::string_view s);

}  // namespace swiftest::obs
