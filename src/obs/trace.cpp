#include "obs/trace.hpp"

namespace swiftest::obs {

const char* to_string(Category category) noexcept {
  switch (category) {
    case Category::kScheduler:
      return "scheduler";
    case Category::kLink:
      return "link";
    case Category::kTransport:
      return "transport";
    case Category::kProtocol:
      return "protocol";
    case Category::kFleet:
      return "fleet";
  }
  return "unknown";
}

std::optional<std::uint32_t> parse_category_mask(std::string_view csv) {
  std::uint32_t mask = 0;
  while (!csv.empty()) {
    const auto comma = csv.find(',');
    const std::string_view token = csv.substr(0, comma);
    csv = comma == std::string_view::npos ? std::string_view{} : csv.substr(comma + 1);
    if (token.empty()) continue;
    if (token == "all") {
      mask |= kAllCategories;
    } else if (token == "scheduler") {
      mask |= static_cast<std::uint32_t>(Category::kScheduler);
    } else if (token == "link") {
      mask |= static_cast<std::uint32_t>(Category::kLink);
    } else if (token == "transport") {
      mask |= static_cast<std::uint32_t>(Category::kTransport);
    } else if (token == "protocol") {
      mask |= static_cast<std::uint32_t>(Category::kProtocol);
    } else if (token == "fleet") {
      mask |= static_cast<std::uint32_t>(Category::kFleet);
    } else {
      return std::nullopt;
    }
  }
  return mask;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::ensure_ring() { ring_.resize(capacity_); }

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  if (size_ == 0) return out;
  out.reserve(size_);
  // Oldest event: `head_` when full (the slot about to be overwritten),
  // index 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::merge_from(const Tracer& src) {
  if (src.size() > 0 && ring_.empty()) ensure_ring();
  for (const TraceEvent& e : src.events()) {
    record(e.ts, e.category, e.kind, e.name, e.id, e.value);
  }
  dropped_ += src.dropped();
}

}  // namespace swiftest::obs
