#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

namespace swiftest::obs {

const char* to_string(Category category) noexcept {
  switch (category) {
    case Category::kScheduler:
      return "scheduler";
    case Category::kLink:
      return "link";
    case Category::kTransport:
      return "transport";
    case Category::kProtocol:
      return "protocol";
    case Category::kFleet:
      return "fleet";
  }
  return "unknown";
}

std::optional<std::uint32_t> parse_category_mask(std::string_view csv,
                                                 std::string* bad_token) {
  std::uint32_t mask = 0;
  while (!csv.empty()) {
    const auto comma = csv.find(',');
    const std::string_view token = csv.substr(0, comma);
    csv = comma == std::string_view::npos ? std::string_view{} : csv.substr(comma + 1);
    if (token.empty()) continue;
    if (token == "all") {
      mask |= kAllCategories;
    } else if (token == "scheduler") {
      mask |= static_cast<std::uint32_t>(Category::kScheduler);
    } else if (token == "link") {
      mask |= static_cast<std::uint32_t>(Category::kLink);
    } else if (token == "transport") {
      mask |= static_cast<std::uint32_t>(Category::kTransport);
    } else if (token == "protocol") {
      mask |= static_cast<std::uint32_t>(Category::kProtocol);
    } else if (token == "fleet") {
      mask |= static_cast<std::uint32_t>(Category::kFleet);
    } else {
      if (bad_token != nullptr) *bad_token = std::string(token);
      return std::nullopt;
    }
  }
  return mask;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::ensure_ring() { ring_.resize(capacity_); }

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  if (size_ == 0) return out;
  out.reserve(size_);
  // Oldest event: `head_` when full (the slot about to be overwritten),
  // index 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::flush_spill() {
  spill_scratch_.clear();
  spill_scratch_.reserve(size_);
  // The ring is full here, so the oldest event sits at head_.
  for (std::size_t i = 0; i < size_; ++i) {
    spill_scratch_.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  spill_(spill_scratch_.data(), spill_scratch_.size());
  spilled_ += size_;
  head_ = 0;
  size_ = 0;
}

void Tracer::merge_from(const Tracer& src) {
  if (src.size() > 0 && ring_.empty()) ensure_ring();
  for (const TraceEvent& e : src.events()) {
    record(e.ts, e.category, e.kind, e.name, e.id, e.value);
  }
  dropped_ += src.dropped();
  spilled_ += src.spilled();
}

void Tracer::sort_canonical() {
  std::vector<TraceEvent> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     // Names are literals but MUST compare by content: the
                     // same literal has different addresses across shards.
                     if (const int c = std::strcmp(a.name, b.name); c != 0) {
                       return c < 0;
                     }
                     if (a.id != b.id) return a.id < b.id;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     if (a.category != b.category) return a.category < b.category;
                     return a.value < b.value;
                   });
  head_ = 0;
  size_ = sorted.size();
  for (std::size_t i = 0; i < sorted.size(); ++i) ring_[i] = sorted[i];
  head_ = size_ == ring_.size() ? 0 : size_;
}

}  // namespace swiftest::obs
