#include "obs/sampling.hpp"

namespace swiftest::obs {
namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace

std::optional<SamplingPolicy> SamplingPolicy::parse(std::string_view spec) {
  std::string_view denom = spec;
  if (const auto slash = spec.find('/'); slash != std::string_view::npos) {
    if (spec.substr(0, slash) != "1") return std::nullopt;
    denom = spec.substr(slash + 1);
  }
  std::uint64_t n = 0;
  if (!parse_u64(denom, n) || n == 0 || n > kMaxDenominator) return std::nullopt;
  SamplingPolicy policy;
  policy.set_denominator(n);
  return policy;
}

std::string SamplingPolicy::describe() const {
  return "1/" + std::to_string(denominator_);
}

SampleSchedule SampleSchedule::plan(std::uint64_t test_count,
                                    const SamplingPolicy& policy,
                                    const CostModel& model) {
  SampleSchedule schedule;
  schedule.salt_ = policy.salt();
  std::uint64_t denom = policy.denominator() == 0 ? 1 : policy.denominator();
  schedule.steps_.push_back(Step{0, denom});
  const std::uint64_t budget = policy.budget_bytes();
  std::uint64_t footprint = 0;
  for (std::uint64_t t = 0; t < test_count; ++t) {
    if (t > 0 && t % kCheckpointInterval == 0 && budget != 0 &&
        footprint + model.base_bytes > budget &&
        denom < SamplingPolicy::kMaxDenominator) {
      denom *= 2;
      schedule.steps_.push_back(Step{t, denom});
      ++schedule.degradations_;
    }
    if (denom <= 1 || splitmix64(t ^ schedule.salt_) % denom == 0) {
      footprint += model.sampled_test_bytes;
    }
    footprint += model.per_test_bytes;
  }
  return schedule;
}

std::uint64_t SampleSchedule::denominator_at(std::uint64_t test_id) const noexcept {
  std::uint64_t denom = 1;
  for (const Step& step : steps_) {
    if (step.from_test > test_id) break;
    denom = step.denominator;
  }
  return denom;
}

bool SampleSchedule::sampled(std::uint64_t test_id) const noexcept {
  const std::uint64_t denom = denominator_at(test_id);
  if (denom <= 1) return true;
  return splitmix64(test_id ^ salt_) % denom == 0;
}

std::uint64_t SampleSchedule::degradations_in(std::uint64_t begin_test,
                                              std::uint64_t end_test) const noexcept {
  std::uint64_t count = 0;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].from_test >= begin_test && steps_[i].from_test < end_test) ++count;
  }
  return count;
}

std::string SampleSchedule::describe_final() const {
  const std::uint64_t denom = steps_.empty() ? 1 : steps_.back().denominator;
  return "1/" + std::to_string(denom);
}

}  // namespace swiftest::obs
