#include "obs/sampling.hpp"

namespace swiftest::obs {
namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace

std::optional<SamplingPolicy> SamplingPolicy::parse(std::string_view spec) {
  std::string_view denom = spec;
  if (const auto slash = spec.find('/'); slash != std::string_view::npos) {
    if (spec.substr(0, slash) != "1") return std::nullopt;
    denom = spec.substr(slash + 1);
  }
  std::uint64_t n = 0;
  if (!parse_u64(denom, n) || n == 0 || n > kMaxDenominator) return std::nullopt;
  SamplingPolicy policy;
  policy.set_denominator(n);
  return policy;
}

std::string SamplingPolicy::describe() const {
  return "1/" + std::to_string(denominator_);
}

}  // namespace swiftest::obs
