// Exporters for the tracer and metrics registry.
//
// All output is deterministic: event order is simulation order, doubles are
// rendered with std::to_chars (shortest round-trip form), and metric maps
// are name-ordered — so two runs with the same seed produce byte-identical
// files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

/// Chrome trace_event JSON ({"traceEvents": [...]}), loadable in
/// chrome://tracing and Perfetto. Instant events render as markers
/// (ph "i"); counter events render as value tracks (ph "C").
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

/// Compact JSONL: one JSON object per event per line, oldest first.
void write_trace_jsonl(const Tracer& tracer, std::ostream& out);

/// Appends one event's JSONL line (newline included) — the exact line format
/// write_trace_jsonl emits, shared with the spill writer so spilled segments
/// concatenate seamlessly with the exported remainder.
void append_trace_jsonl_line(std::string& out, const TraceEvent& event);

/// Metrics snapshot as one JSON document:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

// ------------------------------------------------------ manifest interface
//
// Every obs layer exposes summarize_for_manifest(): a flat, name-ordered
// (key, value) list the RunManifest embeds so `obs diff` can compare runs
// without re-reading every artifact, plus a loader for the artifact the
// layer writes so the differ can go deeper when the file is on disk.

/// Trace summary: retained/dropped/spilled totals plus per-category retained
/// counts ("cat.protocol", ...). Deterministic order.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const Tracer& tracer);

/// Metrics summary: counters as "counter.<name>", gauges as "gauge.<name>",
/// histograms as "hist.<name>.count" / "hist.<name>.sum". Name-ordered.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const MetricsSnapshot& snapshot);

/// What the trace-jsonl diff loader extracts from a --trace-jsonl artifact:
/// event totals plus per-category and per-event-name counts.
struct TraceArtifactSummary {
  std::uint64_t events = 0;
  std::map<std::string, std::uint64_t> per_category;
  std::map<std::string, std::uint64_t> per_name;
};

/// Parses a --trace-jsonl artifact into count form. Returns nullopt (with a
/// line-numbered reason in `error`) on a malformed line.
[[nodiscard]] std::optional<TraceArtifactSummary> parse_trace_jsonl(
    std::string_view text, std::string* error = nullptr);

/// File convenience wrapper over parse_trace_jsonl.
[[nodiscard]] std::optional<TraceArtifactSummary> load_trace_jsonl_file(
    const std::string& path, std::string* error = nullptr);

/// Parses a --metrics-out artifact back into a snapshot (the diff loader's
/// input). Returns nullopt (with a reason in `error`) on malformed JSON or a
/// document without the counters/gauges/histograms shape.
[[nodiscard]] std::optional<MetricsSnapshot> parse_metrics_json(
    std::string_view text, std::string* error = nullptr);

/// File convenience wrapper over parse_metrics_json.
[[nodiscard]] std::optional<MetricsSnapshot> load_metrics_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace swiftest::obs
