// Exporters for the tracer and metrics registry.
//
// All output is deterministic: event order is simulation order, doubles are
// rendered with std::to_chars (shortest round-trip form), and metric maps
// are name-ordered — so two runs with the same seed produce byte-identical
// files.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swiftest::obs {

/// Chrome trace_event JSON ({"traceEvents": [...]}), loadable in
/// chrome://tracing and Perfetto. Instant events render as markers
/// (ph "i"); counter events render as value tracks (ph "C").
void write_chrome_trace(const Tracer& tracer, std::ostream& out);

/// Compact JSONL: one JSON object per event per line, oldest first.
void write_trace_jsonl(const Tracer& tracer, std::ostream& out);

/// Appends one event's JSONL line (newline included) — the exact line format
/// write_trace_jsonl emits, shared with the spill writer so spilled segments
/// concatenate seamlessly with the exported remainder.
void append_trace_jsonl_line(std::string& out, const TraceEvent& event);

/// Metrics snapshot as one JSON document:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

}  // namespace swiftest::obs
