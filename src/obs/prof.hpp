// Wall-clock self-profiling for the simulator itself.
//
// Everything else in obs/ is keyed on *simulated* time and is byte-stable
// across same-seed runs. ProfScope is the deliberate exception: it measures
// where the simulator spends *host* time (workload generation, packet
// replay, export), aggregated per category — count, total, and max
// nanoseconds, no per-event storage. Because the numbers are wall-clock
// they are non-deterministic by nature and MUST NOT be written into the
// deterministic trace/metrics/health artifacts; render them separately with
// write_profile().
//
// Usage:
//   obs::ProfRegistry prof;
//   { obs::ProfScope scope(&prof, "fleet.replay"); run_packet(...); }
//   obs::write_profile(prof, std::cout);
//
// A null registry makes ProfScope a no-op (no clock read), mirroring the
// null-Hub discipline of the tracer.
//
// Threading: a ProfRegistry is single-owner — add() mutates a plain std::map
// with no lock, so concurrent ProfScopes targeting one registry are a data
// race. Parallel code (deploy::run_shards workers) records into a private
// per-thread/per-shard registry and the owner folds them together with
// merge_from() after the join. For per-thread *timelines* (who spent the
// time, when, busy vs idle) use obs/hostprof/.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace swiftest::obs {

class ProfRegistry {
 public:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  void add(const char* category, std::uint64_t elapsed_ns);

  /// Folds another registry into this one (counts and totals add, maxes
  /// take the larger). The single-owner way to combine per-shard/per-thread
  /// registries after a parallel region joins.
  void merge_from(const ProfRegistry& other);

  [[nodiscard]] const std::map<std::string, Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII wall-clock scope: records steady_clock elapsed time into `registry`
/// under `category` (a string literal) on destruction.
class ProfScope {
 public:
  ProfScope(ProfRegistry* registry, const char* category) noexcept
      : registry_(registry), category_(category) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->add(
        category_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfRegistry* registry_;
  const char* category_;
  std::chrono::steady_clock::time_point start_{};
};

/// Plain-text table (category, count, total ms, mean us, max us), ordered by
/// total time descending (name ascending on ties) so the expensive
/// categories lead. When `wall_ns` is nonzero a "% wall" column relates each
/// category to the run's wall-clock. Host-time: informational output only,
/// never a gated or diffed artifact.
void write_profile(const ProfRegistry& registry, std::ostream& out,
                   std::uint64_t wall_ns = 0);

}  // namespace swiftest::obs
