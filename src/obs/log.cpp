#include "obs/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>

namespace swiftest::obs {
namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink& sink_storage() {
  static LogSink sink;
  return sink;
}

void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", to_string(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel log_level() noexcept { return g_level; }

void set_log_sink(LogSink sink) { sink_storage() = std::move(sink); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  const LogSink& sink = sink_storage();
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log(level, buf);
}

}  // namespace swiftest::obs
