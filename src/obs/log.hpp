// Tiny leveled logger for library diagnostics.
//
// Library code (src/) must never write to stdout — stdout belongs to the CLI
// and bench binaries' structured output. Diagnostics go through obs::log
// instead: below the threshold they cost one enum compare; above it they go
// to the installed sink (stderr by default, a capture function in tests).
#pragma once

#include <functional>
#include <string_view>

namespace swiftest::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Messages below `level` are discarded. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the output sink; an empty function restores the default
/// (one "[level] message" line on stderr).
void set_log_sink(LogSink sink);

void log(LogLevel level, std::string_view message);

/// printf-style convenience; formatting is skipped entirely when the level
/// is below the threshold.
__attribute__((format(printf, 2, 3))) void logf(LogLevel level, const char* fmt, ...);

}  // namespace swiftest::obs
