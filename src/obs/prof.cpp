#include "obs/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>
#include <vector>

namespace swiftest::obs {

void ProfRegistry::add(const char* category, std::uint64_t elapsed_ns) {
  Entry& entry = entries_[category];
  ++entry.count;
  entry.total_ns += elapsed_ns;
  entry.max_ns = std::max(entry.max_ns, elapsed_ns);
}

void ProfRegistry::merge_from(const ProfRegistry& other) {
  for (const auto& [category, theirs] : other.entries_) {
    Entry& entry = entries_[category];
    entry.count += theirs.count;
    entry.total_ns += theirs.total_ns;
    entry.max_ns = std::max(entry.max_ns, theirs.max_ns);
  }
}

void write_profile(const ProfRegistry& registry, std::ostream& out,
                   std::uint64_t wall_ns) {
  out << "self-profile (wall clock)\n";
  char line[192];
  if (wall_ns > 0) {
    std::snprintf(line, sizeof(line), "  %-28s %10s %12s %12s %12s %8s\n",
                  "category", "count", "total ms", "mean us", "max us", "% wall");
    out << line;
  } else {
    std::snprintf(line, sizeof(line), "  %-28s %10s %12s %12s %12s\n", "category",
                  "count", "total ms", "mean us", "max us");
    out << line;
  }

  std::vector<std::pair<std::string, ProfRegistry::Entry>> rows(
      registry.entries().begin(), registry.entries().end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns != b.second.total_ns
               ? a.second.total_ns > b.second.total_ns
               : a.first < b.first;
  });

  for (const auto& [category, e] : rows) {
    const double total_ms = static_cast<double>(e.total_ns) / 1e6;
    const double mean_us =
        e.count == 0 ? 0.0
                     : static_cast<double>(e.total_ns) / static_cast<double>(e.count) / 1e3;
    const double max_us = static_cast<double>(e.max_ns) / 1e3;
    if (wall_ns > 0) {
      const double pct =
          100.0 * static_cast<double>(e.total_ns) / static_cast<double>(wall_ns);
      std::snprintf(line, sizeof(line),
                    "  %-28s %10llu %12.3f %12.1f %12.1f %7.1f%%\n", category.c_str(),
                    static_cast<unsigned long long>(e.count), total_ms, mean_us,
                    max_us, pct);
    } else {
      std::snprintf(line, sizeof(line), "  %-28s %10llu %12.3f %12.1f %12.1f\n",
                    category.c_str(), static_cast<unsigned long long>(e.count),
                    total_ms, mean_us, max_us);
    }
    out << line;
  }
}

}  // namespace swiftest::obs
