#include "obs/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace swiftest::obs {

void ProfRegistry::add(const char* category, std::uint64_t elapsed_ns) {
  Entry& entry = entries_[category];
  ++entry.count;
  entry.total_ns += elapsed_ns;
  entry.max_ns = std::max(entry.max_ns, elapsed_ns);
}

void write_profile(const ProfRegistry& registry, std::ostream& out) {
  out << "self-profile (wall clock)\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-28s %10s %12s %12s %12s\n", "category",
                "count", "total ms", "mean us", "max us");
  out << line;
  for (const auto& [category, e] : registry.entries()) {
    const double total_ms = static_cast<double>(e.total_ns) / 1e6;
    const double mean_us =
        e.count == 0 ? 0.0
                     : static_cast<double>(e.total_ns) / static_cast<double>(e.count) / 1e3;
    const double max_us = static_cast<double>(e.max_ns) / 1e3;
    std::snprintf(line, sizeof(line), "  %-28s %10llu %12.3f %12.1f %12.1f\n",
                  category.c_str(), static_cast<unsigned long long>(e.count),
                  total_ms, mean_us, max_us);
    out << line;
  }
}

}  // namespace swiftest::obs
