// Resource self-telemetry: what observing (and running) the fleet costs.
//
// A measurement platform must account for its own overhead (PAPERS.md,
// "Internet Speed Measurement: Current Challenges and Future
// Recommendations"); this monitor is that accounting for the reproduction.
// It collects two strictly separated kinds of signal:
//
//  * Deterministic counters — per-shard slab/transit-pool occupancy,
//    calendar-queue sweep stats, trace/span drop + spill counts, sampling
//    degradations. These are a pure function of (workload, shards) and may
//    land in the metrics registry and health report.
//  * Host measurements — RSS / peak RSS (/proc/self/statm + VmHWM), per-shard
//    and total wall time. Like ProfScope, these NEVER enter deterministic
//    artifacts; they surface only in the health report's meta block (opt-in)
//    and the live `--progress` stderr line.
//
// The progress side (tests done, shards done, RSS sample) is thread-safe so
// a CLI progress thread can poll it while shard workers run; the telemetry
// side is recorded per shard under a mutex as each shard finishes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health/report.hpp"
#include "obs/metrics.hpp"

namespace swiftest::obs {

/// A point-in-time memory reading for this process. Zeros when /proc is
/// unavailable (non-Linux hosts) — callers treat 0 as "unknown".
struct ResourceUsage {
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
};

/// Reads current and peak RSS from /proc/self/statm and /proc/self/status.
[[nodiscard]] ResourceUsage read_resource_usage();

/// Everything one finished shard reports. Wall time is host-dependent; all
/// other fields are deterministic for a fixed (workload, shards).
struct ShardTelemetry {
  std::size_t shard = 0;
  double wall_seconds = 0.0;  // host time; never in deterministic artifacts
  std::uint64_t tests = 0;
  std::uint64_t events_executed = 0;
  // Scheduler / pool occupancy (zero for the analytic backend).
  std::uint64_t slab_slots = 0;
  std::uint64_t callback_heap_fallbacks = 0;
  std::uint64_t payload_nodes = 0;
  std::uint64_t payload_heap_spills = 0;
  std::uint64_t transit_nodes = 0;
  std::uint64_t transit_peak_live = 0;
  std::uint64_t calendar_sweeps = 0;
  std::uint64_t calendar_rebases = 0;
  std::uint64_t calendar_far_pushes = 0;
  // Per-store loss/spill accounting.
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_spilled = 0;
  std::uint64_t span_dropped = 0;
  std::uint64_t span_spilled = 0;
  std::uint64_t health_dropped = 0;
  std::uint64_t sample_degradations = 0;
};

class ResourceMonitor {
 public:
  /// Resets the monitor for a run of `shard_count` shards.
  void begin_run(std::size_t shard_count);

  // -- progress side (thread-safe, called from shard workers / poller) -----

  void add_tests(std::uint64_t n) noexcept {
    tests_done_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_shard_done() noexcept {
    shards_done_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tests_done() const noexcept {
    return tests_done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shards_done() const noexcept {
    return shards_done_.load(std::memory_order_relaxed);
  }

  /// Samples RSS now and folds it into the tracked peak. Thread-safe.
  ResourceUsage sample_usage();

  /// One-line run status for the --progress stderr line, e.g.
  /// "fleet: 10234 tests | shards 3/4 | rss 182.4 MB (peak 201.7)".
  [[nodiscard]] std::string progress_line();

  // -- telemetry side ------------------------------------------------------

  void record_shard(const ShardTelemetry& telemetry);

  /// Marks the run finished; records total wall seconds.
  void finish_run(double wall_seconds);

  [[nodiscard]] std::vector<ShardTelemetry> shard_telemetry() const;

  /// Highest RSS ever observed by sample_usage() (or the kernel's VmHWM,
  /// whichever is larger).
  [[nodiscard]] double peak_rss_mb();

  /// Exports the deterministic counters (occupancy, drops, spills,
  /// degradations — summed over shards) into `metrics`. Only-nonzero
  /// counters are written so runs that never drop stay artifact-compatible.
  void export_metrics(MetricsRegistry& metrics) const;

  /// Appends the full self-telemetry — deterministic counters AND host
  /// measurements (peak RSS, per-shard wall times) — as health-report meta
  /// entries. Opt-in: callers only attach this when the user asked for
  /// resource telemetry, since wall/RSS values differ between hosts.
  void append_report_meta(health::ReportMeta& meta);

 private:
  [[nodiscard]] ShardTelemetry totals_locked() const;

  std::atomic<std::uint64_t> tests_done_{0};
  std::atomic<std::uint64_t> shards_done_{0};
  std::size_t shard_count_ = 0;
  double total_wall_seconds_ = 0.0;
  double peak_rss_mb_ = 0.0;
  std::vector<ShardTelemetry> shards_;
  mutable std::mutex mutex_;
};

}  // namespace swiftest::obs
