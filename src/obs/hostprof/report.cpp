#include "obs/hostprof/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/health/json.hpp"
#include "obs/json_util.hpp"

namespace swiftest::obs::hostprof {
namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  append_u64(out, value);
}

/// Chrome's `ts`/`dur` are microseconds; render ns as "123.456" so nothing
/// is lost (same fixed form as the sim-time exporter).
void append_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  char buf[8];
  std::snprintf(buf, sizeof(buf), ".%03u", static_cast<unsigned>(ns % 1000));
  out.append(buf);
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

std::string thread_label(std::uint32_t tid) {
  return tid == 0 ? "main" : "w" + std::to_string(tid);
}

}  // namespace

void write_prof_jsonl(const ProfData& data, std::ostream& out) {
  std::string line = "{\"type\":\"meta\",\"tool\":\"swiftest-hostprof\",\"version\":2";
  append_kv_u64(line, "chunks", data.chunks);
  append_kv_u64(line, "jobs", data.jobs);
  append_kv_u64(line, "timelines", data.timelines.size());
  append_kv_u64(line, "wall_ns", data.wall_ns);
  line += "}\n";
  out << line;

  for (const TimelineData& tl : data.timelines) {
    line = "{\"type\":\"timeline\"";
    append_kv_u64(line, "tid", tl.tid);
    append_kv_u64(line, "intervals", tl.intervals.size());
    append_kv_u64(line, "dropped", tl.dropped);
    line += "}\n";
    out << line;
    if (tl.worker.valid) {
      line = "{\"type\":\"worker\"";
      append_kv_u64(line, "tid", tl.tid);
      append_kv_u64(line, "busy_ns", tl.worker.busy_ns);
      append_kv_u64(line, "idle_ns", tl.worker.idle_ns);
      append_kv_u64(line, "wall_ns", tl.worker.wall_ns);
      append_kv_u64(line, "pulls", tl.worker.pulls);
      append_kv_u64(line, "steals", tl.worker.steals);
      append_kv_u64(line, "chunks", tl.worker.chunks);
      line += "}\n";
      out << line;
    }
    for (const PhaseAgg& agg : tl.phases) {
      line = "{\"type\":\"phase\"";
      append_kv_u64(line, "tid", tl.tid);
      line += ",\"name\":";
      append_json_string(line, agg.name);
      append_kv_u64(line, "count", agg.count);
      append_kv_u64(line, "total_ns", agg.total_ns);
      append_kv_u64(line, "max_ns", agg.max_ns);
      line += "}\n";
      out << line;
    }
    for (const TimelineData::IntervalData& iv : tl.intervals) {
      line = "{\"type\":\"interval\"";
      append_kv_u64(line, "tid", tl.tid);
      append_kv_u64(line, "depth", iv.depth);
      line += ",\"phase\":";
      append_json_string(line, iv.phase);
      append_kv_u64(line, "t0_ns", iv.t0_ns);
      append_kv_u64(line, "dur_ns", iv.dur_ns);
      append_kv_u64(line, "arg", iv.arg);
      line += "}\n";
      out << line;
    }
  }
}

void write_prof_chrome_trace(const ProfData& data, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::string line;
  bool first = true;
  for (const TimelineData& tl : data.timelines) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(line, tl.tid);
    line += ",\"args\":{\"name\":";
    append_json_string(line, tl.tid == 0 ? std::string("main")
                                         : "worker " + std::to_string(tl.tid));
    line += "}}";
    out << line;
  }
  for (const TimelineData& tl : data.timelines) {
    for (const TimelineData::IntervalData& iv : tl.intervals) {
      line = ",\n{\"name\":";
      append_json_string(line, iv.phase);
      line += ",\"cat\":\"host\",\"ph\":\"X\",\"ts\":";
      append_us(line, iv.t0_ns);
      line += ",\"dur\":";
      append_us(line, iv.dur_ns);
      line += ",\"pid\":1,\"tid\":";
      append_u64(line, tl.tid);
      line += ",\"args\":{\"arg\":";
      append_u64(line, iv.arg);
      line += "}}";
      out << line;
    }
  }
  out << "\n]}\n";
}

namespace {

/// The timeline for `tid`, created in place on first reference. Keeps the
/// loader order-independent beyond "meta may come first".
TimelineData& timeline_for(ProfData& data, std::uint32_t tid) {
  for (TimelineData& tl : data.timelines) {
    if (tl.tid == tid) return tl;
  }
  data.timelines.push_back({});
  data.timelines.back().tid = tid;
  return data.timelines.back();
}

bool require(const health::JsonValue& obj, std::initializer_list<const char*> keys,
             int lineno, std::string* error) {
  for (const char* key : keys) {
    if (obj.get(key) == nullptr) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": missing field \"" + key + "\"";
      }
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<ProfData> read_prof_jsonl(std::istream& in, std::string* error) {
  ProfData data;
  bool saw_meta = false;
  std::string text;
  int lineno = 0;
  while (std::getline(in, text)) {
    ++lineno;
    if (text.empty()) continue;
    std::string parse_error;
    const auto value = health::parse_json(text, &parse_error);
    if (!value || !value->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return std::nullopt;
    }
    const std::string type = value->get_string("type", "");
    if (type == "meta") {
      if (!require(*value, {"jobs", "timelines", "wall_ns"}, lineno, error)) {
        return std::nullopt;
      }
      // Version 2 writes "chunks"; version-1 files recorded "shards". Either
      // way it is the task count of the parallel region.
      if (const auto* chunks = value->get("chunks"); chunks != nullptr) {
        data.chunks = static_cast<std::size_t>(chunks->as_u64());
      } else if (const auto* shards = value->get("shards"); shards != nullptr) {
        data.chunks = static_cast<std::size_t>(shards->as_u64());
      } else {
        if (error != nullptr) {
          *error = "line " + std::to_string(lineno) +
                   ": missing field \"chunks\" (or legacy \"shards\")";
        }
        return std::nullopt;
      }
      data.jobs = static_cast<std::size_t>(value->get("jobs")->as_u64());
      data.wall_ns = value->get("wall_ns")->as_u64();
      saw_meta = true;
    } else if (type == "timeline") {
      if (!require(*value, {"tid", "dropped"}, lineno, error)) return std::nullopt;
      timeline_for(data, static_cast<std::uint32_t>(value->get("tid")->as_u64()))
          .dropped = value->get("dropped")->as_u64();
    } else if (type == "worker") {
      if (!require(*value, {"tid", "busy_ns", "idle_ns", "wall_ns", "pulls"},
                   lineno, error)) {
        return std::nullopt;
      }
      TimelineData& tl =
          timeline_for(data, static_cast<std::uint32_t>(value->get("tid")->as_u64()));
      tl.worker.valid = true;
      tl.worker.busy_ns = value->get("busy_ns")->as_u64();
      tl.worker.idle_ns = value->get("idle_ns")->as_u64();
      tl.worker.wall_ns = value->get("wall_ns")->as_u64();
      tl.worker.pulls = value->get("pulls")->as_u64();
      // Version 2 writes "steals"/"chunks"; version-1 files have "shards"
      // (the executed-task count under the old static partition) and no
      // steal accounting.
      if (const auto* steals = value->get("steals"); steals != nullptr) {
        tl.worker.steals = steals->as_u64();
      }
      if (const auto* chunks = value->get("chunks"); chunks != nullptr) {
        tl.worker.chunks = chunks->as_u64();
      } else if (const auto* shards = value->get("shards"); shards != nullptr) {
        tl.worker.chunks = shards->as_u64();
      } else {
        if (error != nullptr) {
          *error = "line " + std::to_string(lineno) +
                   ": missing field \"chunks\" (or legacy \"shards\")";
        }
        return std::nullopt;
      }
    } else if (type == "phase") {
      if (!require(*value, {"tid", "name", "count", "total_ns", "max_ns"}, lineno,
                   error)) {
        return std::nullopt;
      }
      PhaseAgg agg;
      agg.name = value->get("name")->as_string();
      agg.count = value->get("count")->as_u64();
      agg.total_ns = value->get("total_ns")->as_u64();
      agg.max_ns = value->get("max_ns")->as_u64();
      timeline_for(data, static_cast<std::uint32_t>(value->get("tid")->as_u64()))
          .phases.push_back(std::move(agg));
    } else if (type == "interval") {
      if (!require(*value, {"tid", "depth", "phase", "t0_ns", "dur_ns", "arg"}, lineno,
                   error)) {
        return std::nullopt;
      }
      TimelineData::IntervalData iv;
      iv.phase = value->get("phase")->as_string();
      iv.t0_ns = value->get("t0_ns")->as_u64();
      iv.dur_ns = value->get("dur_ns")->as_u64();
      iv.depth = static_cast<std::uint32_t>(value->get("depth")->as_u64());
      iv.arg = value->get("arg")->as_u64();
      timeline_for(data, static_cast<std::uint32_t>(value->get("tid")->as_u64()))
          .intervals.push_back(std::move(iv));
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": unknown record type \"" +
                 type + "\"";
      }
      return std::nullopt;
    }
  }
  if (!saw_meta) {
    if (error != nullptr) *error = "no meta record found";
    return std::nullopt;
  }
  std::sort(data.timelines.begin(), data.timelines.end(),
            [](const TimelineData& a, const TimelineData& b) { return a.tid < b.tid; });
  return data;
}

std::optional<ProfData> load_prof_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return read_prof_jsonl(in, error);
}

ProfReport analyze_prof(const ProfData& data) {
  ProfReport report;
  report.chunks = data.chunks;
  report.jobs = data.jobs;
  report.wall_ns = data.wall_ns;

  std::map<std::string, PhaseRow> phases;
  for (const TimelineData& tl : data.timelines) {
    report.intervals_dropped += tl.dropped;
    for (const PhaseAgg& agg : tl.phases) {
      PhaseRow& row = phases[agg.name];
      row.name = agg.name;
      row.count += agg.count;
      row.total_ns += agg.total_ns;
      row.max_ns = std::max(row.max_ns, agg.max_ns);
      if (tl.tid == 0 &&
          (agg.name == kPhasePool || agg.name == kLegacyPhasePool)) {
        report.pool_wall_ns += agg.total_ns;
      }
    }
    if (tl.worker.valid) {
      ++report.workers;
      report.busy_ns += tl.worker.busy_ns;
      report.idle_ns += tl.worker.idle_ns;
      report.worker_rows.push_back({tl.tid, tl.worker});
    }
    for (const TimelineData::IntervalData& iv : tl.intervals) {
      if (tl.tid == 0 && iv.depth == 0) report.main_coverage += seconds(iv.dur_ns);
      if (iv.phase == kPhaseChunk || iv.phase == kLegacyPhaseChunk) {
        report.slowest_chunks.push_back({iv.arg, iv.dur_ns, tl.tid});
      }
    }
  }
  report.main_coverage =
      report.wall_ns > 0 ? report.main_coverage / seconds(report.wall_ns) : 0.0;

  report.serial_ns =
      report.wall_ns > report.pool_wall_ns ? report.wall_ns - report.pool_wall_ns : 0;
  const double serial_s = seconds(report.serial_ns);
  const double busy_s = seconds(report.busy_ns);
  const double work_s = serial_s + busy_s;
  report.serial_fraction = work_s > 0.0 ? serial_s / work_s : 0.0;
  report.amdahl_max_speedup = report.serial_fraction > 0.0
                                  ? 1.0 / report.serial_fraction
                                  : std::numeric_limits<double>::infinity();
  const std::size_t jobs = std::max<std::size_t>(1, report.jobs);
  const double wall_at_jobs = serial_s + busy_s / static_cast<double>(jobs);
  report.amdahl_speedup_at_jobs = wall_at_jobs > 0.0 ? work_s / wall_at_jobs : 0.0;
  report.parallel_efficiency =
      report.workers > 0 && report.pool_wall_ns > 0
          ? busy_s / (static_cast<double>(report.workers) * seconds(report.pool_wall_ns))
          : 0.0;

  if (!report.slowest_chunks.empty()) {
    double total = 0.0;
    std::uint64_t max_ns = 0;
    for (const ChunkRow& row : report.slowest_chunks) {
      total += seconds(row.dur_ns);
      max_ns = std::max(max_ns, row.dur_ns);
    }
    const double mean = total / static_cast<double>(report.slowest_chunks.size());
    report.shard_imbalance = mean > 0.0 ? seconds(max_ns) / mean : 0.0;
    std::sort(report.slowest_chunks.begin(), report.slowest_chunks.end(),
              [](const ChunkRow& a, const ChunkRow& b) {
                return a.dur_ns != b.dur_ns ? a.dur_ns > b.dur_ns : a.chunk < b.chunk;
              });
    if (report.slowest_chunks.size() > 8) report.slowest_chunks.resize(8);
  }

  report.phases.reserve(phases.size());
  for (auto& [name, row] : phases) {
    row.pct_of_wall = report.wall_ns > 0
                          ? 100.0 * static_cast<double>(row.total_ns) /
                                static_cast<double>(report.wall_ns)
                          : 0.0;
    report.phases.push_back(std::move(row));
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.name < b.name;
            });
  return report;
}

void write_prof_report_markdown(const ProfReport& report, std::ostream& out) {
  char line[256];
  out << "# Host-time profile\n\n";
  std::snprintf(line, sizeof(line),
                "- wall-clock: %.3f s (%zu chunks, %zu jobs, %zu worker(s))\n",
                seconds(report.wall_ns), report.chunks, report.jobs, report.workers);
  out << line;
  std::snprintf(line, sizeof(line),
                "- parallel region (%s): %.3f s; parallel efficiency %.1f%%\n",
                kPhasePool, seconds(report.pool_wall_ns),
                100.0 * report.parallel_efficiency);
  out << line;
  std::snprintf(line, sizeof(line),
                "- serial fraction: %.3f (serial %.3f s of %.3f s total work)\n",
                report.serial_fraction, seconds(report.serial_ns),
                seconds(report.serial_ns) + seconds(report.busy_ns));
  out << line;
  if (std::isfinite(report.amdahl_max_speedup)) {
    std::snprintf(line, sizeof(line),
                  "- Amdahl max speedup: %.2fx; predicted at %zu job(s): %.2fx\n",
                  report.amdahl_max_speedup, std::max<std::size_t>(1, report.jobs),
                  report.amdahl_speedup_at_jobs);
  } else {
    std::snprintf(line, sizeof(line),
                  "- Amdahl max speedup: unbounded (no serial time measured)\n");
  }
  out << line;
  std::snprintf(line, sizeof(line),
                "- chunk wall-time imbalance (max/mean): %.2f\n",
                report.shard_imbalance);
  out << line;
  std::snprintf(line, sizeof(line),
                "- calling-thread phase coverage: %.1f%% of wall\n",
                100.0 * report.main_coverage);
  out << line;
  if (report.intervals_dropped > 0) {
    std::snprintf(line, sizeof(line), "- intervals dropped (ring full): %llu\n",
                  static_cast<unsigned long long>(report.intervals_dropped));
    out << line;
  }

  out << "\n## Phases (all threads, ranked by total host time)\n\n"
      << "| phase | count | total s | % of wall | max ms |\n"
      << "|---|---|---|---|---|\n";
  for (const PhaseRow& row : report.phases) {
    std::snprintf(line, sizeof(line), "| %s | %llu | %.4f | %.1f | %.3f |\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.count),
                  seconds(row.total_ns), row.pct_of_wall,
                  static_cast<double>(row.max_ns) / 1e6);
    out << line;
  }
  out << "\nParallel phases sum over threads, so their share can exceed 100%"
         " of wall; that excess is the parallelism.\n";

  out << "\n## Workers\n\n"
      << "| worker | busy s | idle s | busy % | chunks | steals | pulls |\n"
      << "|---|---|---|---|---|---|---|\n";
  for (const WorkerRow& row : report.worker_rows) {
    const double wall_s = seconds(row.stats.wall_ns);
    const std::string label = thread_label(row.tid);
    std::snprintf(line, sizeof(line),
                  "| %s | %.4f | %.4f | %.1f | %llu | %llu | %llu |\n",
                  label.c_str(), seconds(row.stats.busy_ns),
                  seconds(row.stats.idle_ns),
                  wall_s > 0.0 ? 100.0 * seconds(row.stats.busy_ns) / wall_s : 0.0,
                  static_cast<unsigned long long>(row.stats.chunks),
                  static_cast<unsigned long long>(row.stats.steals),
                  static_cast<unsigned long long>(row.stats.pulls));
    out << line;
  }

  if (!report.slowest_chunks.empty()) {
    out << "\n## Slowest chunks\n\n"
        << "| chunk | wall s | worker |\n"
        << "|---|---|---|\n";
    for (const ChunkRow& row : report.slowest_chunks) {
      const std::string label = thread_label(row.tid);
      std::snprintf(line, sizeof(line), "| %llu | %.4f | %s |\n",
                    static_cast<unsigned long long>(row.chunk), seconds(row.dur_ns),
                    label.c_str());
      out << line;
    }
  }
}

std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const ProfData& data) {
  const ProfReport report = analyze_prof(data);
  return {
      {"wall_ns", static_cast<double>(data.wall_ns)},
      {"timelines", static_cast<double>(data.timelines.size())},
      {"serial_fraction", report.serial_fraction},
      {"parallel_efficiency", report.parallel_efficiency},
      {"shard_imbalance", report.shard_imbalance},
      {"main_coverage", report.main_coverage},
  };
}

}  // namespace swiftest::obs::hostprof
