#include "obs/hostprof/hostprof.hpp"

#include <algorithm>
#include <cstring>

namespace swiftest::obs::hostprof {

std::uint64_t Timeline::now_ns() const noexcept { return owner_->now_ns(); }

void Timeline::close(const char* phase, std::uint64_t t0_ns, std::uint32_t depth,
                     std::uint64_t arg) {
  // Lazy ring allocation happens before the end-of-interval clock read, so
  // its cost is charged to the interval that triggered it instead of
  // vanishing into an unattributed gap between intervals.
  if (capacity_ != 0 && ring_.empty()) ring_.resize(capacity_);
  const std::uint64_t t1_ns = now_ns();
  const std::uint64_t dur_ns = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  depth_ = depth;

  // Exact aggregate first: drops never corrupt the totals. String literals
  // make pointer equality the common case; strcmp catches the same phase
  // name spelled in two translation units.
  PhaseAgg* agg = nullptr;
  for (auto& [key, value] : aggs_) {
    if (key == phase || std::strcmp(key, phase) == 0) {
      agg = &value;
      break;
    }
  }
  if (agg == nullptr) {
    aggs_.emplace_back(phase, PhaseAgg{phase, 0, 0, 0});
    agg = &aggs_.back().second;
  }
  ++agg->count;
  agg->total_ns += dur_ns;
  agg->max_ns = std::max(agg->max_ns, dur_ns);

  if (ring_.empty()) return;  // capacity 0: aggregates only
  Interval& slot = ring_[head_];
  slot.phase = phase;
  slot.t0_ns = t0_ns;
  slot.dur_ns = dur_ns;
  slot.depth = depth;
  slot.arg = arg;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<Interval> Timeline::intervals() const {
  std::vector<Interval> out;
  out.reserve(size_);
  if (size_ == 0) return out;
  // Oldest first: when the ring wrapped, the oldest retained interval sits
  // at head_ (the next overwrite target).
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

HostProfiler::HostProfiler(std::size_t capacity_per_timeline)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity_per_timeline) {
  timelines_.push_back(std::make_unique<Timeline>(this, 0, capacity_));
}

void HostProfiler::reserve_workers(std::size_t n) {
  while (timelines_.size() < n + 1) {
    timelines_.push_back(std::make_unique<Timeline>(
        this, static_cast<std::uint32_t>(timelines_.size()), capacity_));
  }
}

ProfData HostProfiler::snapshot() const {
  ProfData data;
  data.chunks = chunks_;
  data.jobs = jobs_;
  data.wall_ns = wall_ns_ != 0 ? wall_ns_ : now_ns();
  data.timelines.reserve(timelines_.size());
  for (const auto& timeline : timelines_) {
    TimelineData td;
    td.tid = timeline->tid();
    td.dropped = timeline->dropped();
    td.worker = timeline->worker_stats();
    for (const auto& [key, agg] : timeline->phase_aggs()) td.phases.push_back(agg);
    for (const Interval& iv : timeline->intervals()) {
      td.intervals.push_back({iv.phase, iv.t0_ns, iv.dur_ns, iv.depth, iv.arg});
    }
    data.timelines.push_back(std::move(td));
  }
  return data;
}

}  // namespace swiftest::obs::hostprof
