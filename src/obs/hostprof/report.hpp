// Rendering and analysis of host-time profiles (obs/hostprof/hostprof.hpp).
//
// Three renderings of one ProfData:
//   * PROF JSONL (`--prof-out`) — one self-describing JSON object per line
//     ("type": meta | timeline | worker | phase | interval), the lossless
//     machine format `swiftest-cli profile report` and the CI schema gate
//     consume.
//   * Chrome trace_event JSON (`--prof-trace`) — the host-time timeline with
//     one named track per thread (main + each pool worker), loadable in
//     Perfetto / chrome://tracing.
//   * The attribution report — parallel efficiency, serial fraction, Amdahl
//     bounds, per-chunk imbalance and steal attribution, and a ranked phase
//     table, as markdown.
//
// Everything here is host-time presentation: these files are never compared
// byte-for-byte and never feed deterministic artifacts.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/hostprof/hostprof.hpp"

namespace swiftest::obs::hostprof {

/// Writes the PROF JSONL document: a meta line, then per timeline a
/// timeline line, an optional worker line, phase aggregate lines, and the
/// retained interval lines.
void write_prof_jsonl(const ProfData& data, std::ostream& out);

/// Writes the Chrome trace_event rendering: one metadata-named track per
/// timeline ("main", "worker 1", ...), one complete ("X") event per
/// retained interval.
void write_prof_chrome_trace(const ProfData& data, std::ostream& out);

/// Parses a PROF JSONL stream back into ProfData. Returns nullopt (with a
/// line-numbered reason in `error`) on malformed input, an unknown record
/// type, or a missing required field — the same checks the CI gate runs.
[[nodiscard]] std::optional<ProfData> read_prof_jsonl(std::istream& in,
                                                      std::string* error = nullptr);

/// File convenience wrapper over read_prof_jsonl.
[[nodiscard]] std::optional<ProfData> load_prof_file(const std::string& path,
                                                     std::string* error = nullptr);

/// One row of the ranked phase table (aggregated across every timeline, so
/// parallel phases — e.g. shard.run summed over workers — can exceed 100% of
/// wall; that excess is exactly the parallelism).
struct PhaseRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  double pct_of_wall = 0.0;
};

struct WorkerRow {
  std::uint32_t tid = 0;
  WorkerStats stats;
};

struct ChunkRow {
  std::uint64_t chunk = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // the timeline that executed it
};

/// The Amdahl attribution of one run. Definitions (DESIGN.md §13, §15):
///   pool_wall_ns     wall time of the calling thread's "exec.run" phase —
///                    the parallel region ("shard.replay" in legacy files).
///   serial_ns        wall_ns - pool_wall_ns: everything only the calling
///                    thread does (workload gen, merge, canonicalize,
///                    sample-log replay, export).
///   busy_ns          Σ worker busy time (the parallelizable work).
///   serial_fraction  serial_ns / (serial_ns + busy_ns) — the Amdahl "s"
///                    over total work, not elapsed wall.
///   amdahl_max_speedup      1 / s (infinite when s == 0).
///   amdahl_speedup_at_jobs  (serial+busy) / (serial + busy/jobs): the
///                    speedup a perfectly balanced pool of `jobs` workers
///                    could reach given this serial tail.
///   parallel_efficiency     busy_ns / (workers * pool_wall_ns): how much of
///                    the pool's capacity did real work (1 - idle share).
///   shard_imbalance  max / mean of per-chunk wall times ("chunk.run").
///                    Work stealing bounds it structurally: the name keeps
///                    the historical gate key, the unit is now a chunk.
///   main_coverage    Σ depth-0 calling-thread intervals / wall — how much
///                    of the run the phase instrumentation accounts for
///                    (the CI gate requires >= 95%).
struct ProfReport {
  std::size_t chunks = 0;
  std::size_t jobs = 0;
  std::size_t workers = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t pool_wall_ns = 0;
  std::uint64_t serial_ns = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  double parallel_efficiency = 0.0;
  double serial_fraction = 0.0;
  double amdahl_max_speedup = 0.0;
  double amdahl_speedup_at_jobs = 0.0;
  double shard_imbalance = 0.0;
  double main_coverage = 0.0;
  std::uint64_t intervals_dropped = 0;
  std::vector<PhaseRow> phases;          // ranked by total_ns descending
  std::vector<WorkerRow> worker_rows;    // tid ascending
  std::vector<ChunkRow> slowest_chunks;  // top slice, dur descending
};

/// Computes the attribution report from a profile.
[[nodiscard]] ProfReport analyze_prof(const ProfData& data);

/// Manifest summary of a host-time profile. Everything here is host time —
/// the RunManifest marks the hostprof layer informational, so these values
/// explain a wall-clock change without ever gating a diff.
[[nodiscard]] std::vector<std::pair<std::string, double>> summarize_for_manifest(
    const ProfData& data);

/// Renders the report as markdown ("# Host-time profile" ...).
void write_prof_report_markdown(const ProfReport& report, std::ostream& out);

/// The phase names run_tasks records: the pool region on the calling
/// thread, per-chunk execution on workers, and the join barrier. Shared
/// constants so recorder and analyzer cannot drift apart.
inline constexpr const char* kPhasePool = "exec.run";
inline constexpr const char* kPhaseChunk = "chunk.run";
inline constexpr const char* kPhaseJoin = "pool.join";
/// Legacy phase names (pre chunk-plane profiles); the analyzer still folds
/// them into the same report so old PROF files keep rendering.
inline constexpr const char* kLegacyPhasePool = "shard.replay";
inline constexpr const char* kLegacyPhaseChunk = "shard.run";

}  // namespace swiftest::obs::hostprof
