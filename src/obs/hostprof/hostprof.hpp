// Thread-aware host-time profiler for the parallel runtime.
//
// obs::ProfScope answers "how much wall-clock did category X cost, in
// total"; it cannot say *which thread* spent it, *when*, or how much of the
// run was serial. This subsystem retains that structure: every thread of the
// chunked fleet runtime records nested phase *intervals* into its own
// ProfTimeline — the calling thread's workload.gen / merge.* / export
// phases, each pool worker's per-chunk replay — plus per-worker busy/idle
// wait accounting around deploy::run_tasks' work-stealing pool. After the
// pool joins, HostProfiler::snapshot() folds the timelines into one ProfData
// that renders as PROF JSONL (obs/hostprof/report.hpp), as a Chrome
// trace_event timeline with one track per worker, and as the Amdahl
// attribution report behind `swiftest-cli profile report`.
//
// Threading contract (the reason the record path needs no locks):
//   * Each Timeline is owned by exactly one thread while recording. The
//     calling thread creates worker timelines up front (reserve_workers)
//     BEFORE spawning the pool; thread creation and join provide the
//     happens-before edges, so recording is plain stores into thread-private
//     memory — no atomics, no mutex, TSan-clean.
//   * snapshot()/readers run strictly after every recording thread joined.
//
// Like the Tracer, interval storage is ring-bounded (oldest intervals are
// overwritten and counted in dropped()), while the per-phase aggregates
// (count/total/max) stay exact regardless of drops. All timestamps are
// steady_clock nanoseconds relative to the profiler's construction — host
// time, never simulated time, and therefore NEVER part of deterministic
// artifacts (the ProfScope rule, DESIGN.md §8).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace swiftest::obs::hostprof {

class HostProfiler;

/// One recorded phase interval on one thread's timeline. `phase` must point
/// at static storage (a string literal), mirroring the Tracer's contract.
struct Interval {
  const char* phase = "";
  std::uint64_t t0_ns = 0;   // start, relative to the profiler's epoch
  std::uint64_t dur_ns = 0;  // closed duration
  std::uint32_t depth = 0;   // nesting depth at open (0 = top level)
  std::uint64_t arg = 0;     // correlator: shard index, etc.
};

/// Exact per-phase aggregate, immune to interval-ring drops.
struct PhaseAgg {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Pool wait accounting for one worker thread (or the calling thread on the
/// inline jobs<=1 path): busy is the sum of chunk-execution time, idle is
/// everything else between the worker's first and last breath (deque takes,
/// steal sweeps, termination checks), so busy + idle == wall exactly.
struct WorkerStats {
  bool valid = false;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t pulls = 0;   // acquisition rounds (take + steal sweeps, incl. misses)
  std::uint64_t steals = 0;  // chunks taken from another worker's deque
  std::uint64_t chunks = 0;  // chunks this worker executed
};

/// One thread's interval store. Single-owner while recording (see the
/// threading contract above); use HostScope rather than open/close directly.
class Timeline {
 public:
  Timeline(const HostProfiler* owner, std::uint32_t tid, std::size_t capacity)
      : owner_(owner), tid_(tid), capacity_(capacity) {}

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

  /// Host nanoseconds since the owning profiler's epoch.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Opens a nested scope: returns the depth the matching close must restore.
  std::uint32_t open() noexcept { return depth_++; }

  /// Closes a scope opened at `depth`: records the interval (ring-bounded)
  /// and folds it into the exact per-phase aggregate.
  void close(const char* phase, std::uint64_t t0_ns, std::uint32_t depth,
             std::uint64_t arg);

  void set_worker_stats(const WorkerStats& stats) noexcept { worker_ = stats; }

  // -- read side: only valid after every recording thread joined -----------
  [[nodiscard]] const WorkerStats& worker_stats() const noexcept { return worker_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t interval_count() const noexcept { return size_; }
  /// Retained intervals, oldest first.
  [[nodiscard]] std::vector<Interval> intervals() const;
  [[nodiscard]] const std::vector<std::pair<const char*, PhaseAgg>>& phase_aggs()
      const noexcept {
    return aggs_;
  }

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

 private:
  const HostProfiler* owner_;
  std::uint32_t tid_;
  std::uint32_t depth_ = 0;
  // Interval ring, allocated lazily on the first close (a reserved worker
  // timeline that never runs a shard costs nothing).
  std::vector<Interval> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  // Exact aggregates. Keys are string literals: pointer equality is the fast
  // path, strcmp the fallback, linear scan over the handful of phase names.
  std::vector<std::pair<const char*, PhaseAgg>> aggs_;
  WorkerStats worker_;
};

/// RAII nested host-time scope. A null timeline makes it a no-op with no
/// clock read — the null-registry contract of ProfScope.
class HostScope {
 public:
  explicit HostScope(Timeline* timeline, const char* phase,
                     std::uint64_t arg = 0) noexcept
      : timeline_(timeline), phase_(phase), arg_(arg) {
    if (timeline_ != nullptr) {
      depth_ = timeline_->open();
      t0_ns_ = timeline_->now_ns();
    }
  }
  ~HostScope() {
    if (timeline_ != nullptr) timeline_->close(phase_, t0_ns_, depth_, arg_);
  }

  HostScope(const HostScope&) = delete;
  HostScope& operator=(const HostScope&) = delete;

 private:
  Timeline* timeline_;
  const char* phase_;
  std::uint64_t arg_;
  std::uint64_t t0_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Serializable snapshot of one timeline (phase names copied out of static
/// storage so loaded-from-file data owns its strings).
struct TimelineData {
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  WorkerStats worker;
  std::vector<PhaseAgg> phases;
  struct IntervalData {
    std::string phase;
    std::uint64_t t0_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t depth = 0;
    std::uint64_t arg = 0;
  };
  std::vector<IntervalData> intervals;
};

/// Everything `swiftest-cli profile report` consumes: the run shape, total
/// wall, and every thread's timeline. Produced by snapshot(), round-tripped
/// through PROF JSONL (report.hpp).
struct ProfData {
  std::size_t chunks = 0;
  std::size_t jobs = 0;
  std::uint64_t wall_ns = 0;
  std::vector<TimelineData> timelines;  // [0] is the calling thread (tid 0)
};

/// The per-run registry of timelines. Construct on the thread that will do
/// the serial work (tid 0 = main()); call reserve_workers before spawning a
/// pool, finish() after the last phase, snapshot() to export.
class HostProfiler {
 public:
  explicit HostProfiler(std::size_t capacity_per_timeline = Timeline::kDefaultCapacity);

  HostProfiler(const HostProfiler&) = delete;
  HostProfiler& operator=(const HostProfiler&) = delete;

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's timeline (tid 0).
  [[nodiscard]] Timeline& main() noexcept { return *timelines_[0]; }

  /// Ensures worker timelines (tids 1..n) exist. MUST be called from the
  /// owning thread before the pool spawns — workers never allocate or lock.
  void reserve_workers(std::size_t n);

  /// Worker `index`'s timeline (tid index + 1). reserve_workers(index + 1)
  /// must have happened.
  [[nodiscard]] Timeline& worker(std::size_t index) noexcept {
    return *timelines_[index + 1];
  }

  void set_run_shape(std::size_t chunks, std::size_t jobs) noexcept {
    chunks_ = chunks;
    jobs_ = jobs;
  }

  /// Stamps the run's total wall time. Call once, after the last phase.
  void finish() noexcept { wall_ns_ = now_ns(); }

  /// Folds every timeline into a serializable ProfData. Only call after all
  /// recording threads joined. wall_ns falls back to "now" if finish() was
  /// never called.
  [[nodiscard]] ProfData snapshot() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::size_t chunks_ = 0;
  std::size_t jobs_ = 0;
  std::uint64_t wall_ns_ = 0;
  std::vector<std::unique_ptr<Timeline>> timelines_;
};

}  // namespace swiftest::obs::hostprof
