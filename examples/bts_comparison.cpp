// Back-to-back comparison of the four bandwidth testers on one simulated
// user (§5.3's test-group design): BTS-APP flooding, FAST, FastBTS, and
// Swiftest, each on a fresh-but-identical scenario.
//
//   $ ./examples/bts_comparison [true_bandwidth_mbps] [tech: 4g|5g|wifi]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "bts/fast.hpp"
#include "bts/fastbts.hpp"
#include "bts/flooding.hpp"
#include "swiftest/client.hpp"

int main(int argc, char** argv) {
  using namespace swiftest;

  const double truth = argc > 1 ? std::atof(argv[1]) : 300.0;
  dataset::AccessTech tech = dataset::AccessTech::k5G;
  if (argc > 2) {
    if (std::strcmp(argv[2], "4g") == 0) tech = dataset::AccessTech::k4G;
    if (std::strcmp(argv[2], "wifi") == 0) tech = dataset::AccessTech::kWiFi5;
  }

  netsim::ScenarioConfig net;
  net.access_rate = core::Bandwidth::mbps(truth);
  net.access_delay = tech == dataset::AccessTech::k4G ? core::milliseconds(25)
                     : tech == dataset::AccessTech::k5G ? core::milliseconds(12)
                                                        : core::milliseconds(5);

  swift::ModelRegistry registry;
  swift::SwiftestConfig swift_cfg;
  swift_cfg.tech = tech;

  std::vector<std::unique_ptr<bts::BandwidthTester>> testers;
  testers.push_back(std::make_unique<bts::FloodingBts>());
  testers.push_back(std::make_unique<bts::FastBts>());
  testers.push_back(std::make_unique<bts::FastBtsCi>());
  testers.push_back(std::make_unique<swift::SwiftestClient>(swift_cfg, registry));

  std::printf("Back-to-back test group: %s, true bandwidth %.0f Mbps\n",
              to_string(tech).c_str(), truth);
  std::printf("%-10s %12s %10s %12s %8s\n", "tester", "result", "time (s)", "data",
              "flows");
  for (auto& tester : testers) {
    netsim::Scenario scenario(net, /*seed=*/2026);  // identical conditions
    const auto result = tester->run(scenario);
    std::printf("%-10s %9.1f Mbps %10.2f %12s %8zu\n", tester->name().c_str(),
                result.bandwidth_mbps, core::to_seconds(result.total_duration()),
                core::to_string(result.data_used).c_str(), result.connections_used);
  }
  std::printf("\nExpected shape: all four near the truth here; Swiftest finishes in\n"
              "~1 s with ~10x less data; flooding takes its fixed 10 s.\n");
  return 0;
}
