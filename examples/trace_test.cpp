// Tracing a bandwidth test: attach a FlowTimeseries to the testers and
// print the 100 ms throughput timeline, stalls, and summary — the view an
// engineer uses to debug why a test converged where it did.
//
//   $ ./examples/trace_test [true_bandwidth_mbps]
#include <cstdio>
#include <cstdlib>

#include "bts/flooding.hpp"
#include "netsim/flow_metrics.hpp"
#include "netsim/scenario.hpp"
#include "stats/histogram.hpp"
#include "swiftest/client.hpp"

namespace {

using namespace swiftest;

void print_timeline(const char* label, const netsim::FlowTimeseries& ts) {
  const auto windows = ts.windows(core::milliseconds(100));
  std::printf("\n%s: %zu windows of 100 ms, mean %.1f Mbps\n", label, windows.size(),
              ts.mean_mbps());
  std::vector<double> mbps;
  for (const auto& w : windows) mbps.push_back(w.mbps);
  std::fputs(stats::ascii_chart(mbps, 8).c_str(), stdout);
  for (const auto& stall : ts.stalls(core::milliseconds(150))) {
    std::printf("  stall at t=%.2fs for %.0f ms\n", core::to_seconds(stall.start),
                core::to_milliseconds(stall.duration));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double truth = argc > 1 ? std::atof(argv[1]) : 300.0;

  // Swiftest trace.
  {
    netsim::ScenarioConfig net;
    net.access_rate = core::Bandwidth::mbps(truth);
    net.access_delay = core::milliseconds(12);
    netsim::Scenario scenario(net, 99);
    netsim::FlowTimeseries ts(scenario.scheduler());
    swift::ModelRegistry registry;
    swift::SwiftestConfig cfg;
    cfg.tech = dataset::AccessTech::k5G;
    swift::SwiftestClient client(cfg, registry);
    // The client samples payload bytes itself; tap the same scenario via a
    // second run is unnecessary — trace its 50 ms samples directly.
    const auto result = client.run(scenario);
    std::printf("Swiftest estimate %.1f Mbps in %.2f s; 50 ms samples:\n",
                result.bandwidth_mbps, core::to_seconds(result.probe_duration));
    std::fputs(stats::ascii_chart(result.samples_mbps, 8).c_str(), stdout);
  }

  // Flooding trace with a FlowTimeseries tap on the TCP app bytes.
  {
    netsim::ScenarioConfig net;
    net.access_rate = core::Bandwidth::mbps(truth);
    net.access_delay = core::milliseconds(12);
    netsim::Scenario scenario(net, 99);
    netsim::FlowTimeseries ts(scenario.scheduler());
    bts::FloodingBts tester;
    // Tap: wrap a TCP connection of our own beside the test to show the
    // technique (the tester's own flows are internal).
    netsim::TcpConfig tcp_cfg;
    tcp_cfg.mss = netsim::suggested_mss(net.access_rate);
    netsim::TcpConnection probe(scenario.scheduler(), scenario.server_path(9), tcp_cfg,
                                77);
    probe.set_on_delivered([&](std::int64_t b) { ts.on_bytes(b); });
    probe.start();
    const auto result = tester.run(scenario);
    probe.stop();
    std::printf("\nFlooding estimate %.1f Mbps in %.1f s (shares the link with our tap)\n",
                result.bandwidth_mbps, core::to_seconds(result.probe_duration));
    print_timeline("tap flow during the flood", ts);
  }
  return 0;
}
