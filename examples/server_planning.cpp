// Cost-effective server deployment (§5.2): estimate the probing workload
// from recent campaign data, solve the purchase ILP over a OneProvider-like
// catalog, and place the purchased servers near the eight core IXPs.
//
//   $ ./examples/server_planning [tests_per_day]
#include <cstdio>
#include <cstdlib>

#include "dataset/generator.hpp"
#include "deploy/catalog.hpp"
#include "deploy/placement.hpp"
#include "deploy/planner.hpp"
#include "deploy/workload.hpp"

int main(int argc, char** argv) {
  using namespace swiftest;

  const double tests_per_day = argc > 1 ? std::atof(argv[1]) : 10'000.0;

  // 1. Recent measurement data tell us what bandwidths tests will demand.
  const auto records = dataset::generate_campaign(80'000, 2021, 11);

  // 2. Workload estimation: peak-hour arrivals x test duration x bandwidth.
  deploy::WorkloadParams params;
  params.tests_per_day = tests_per_day;
  params.test_duration_s = 1.2;  // Swiftest tests are ~1.2 s end to end
  const auto workload = deploy::estimate_workload(records, params);
  std::printf("Workload for %.0f tests/day:\n", tests_per_day);
  std::printf("  peak arrivals %.2f/s, concurrency sized at %g tests,\n",
              workload.peak_arrivals_per_second, workload.sized_concurrency);
  std::printf("  per-test P95 bandwidth %.0f Mbps -> demand %.0f Mbps\n",
              workload.per_test_mbps, workload.demand_mbps);

  // 3. Purchase plan: minimize cost subject to demand + margin.
  const auto catalog = deploy::synthetic_catalog();
  const auto plan = deploy::plan_purchase(catalog, workload.demand_mbps);
  if (!plan.feasible) {
    std::printf("No feasible plan in the catalog for this demand.\n");
    return 1;
  }
  std::printf("\nPurchase plan: %zu servers, %.0f Mbps, $%.0f/month\n",
              plan.total_servers, plan.total_bandwidth_mbps, plan.total_cost_usd);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (plan.counts[i] > 0) {
      std::printf("  %2d x %6.0f Mbps @ $%7.2f/month  (%s)\n", plan.counts[i],
                  catalog[i].bandwidth_mbps, catalog[i].price_per_month_usd,
                  catalog[i].provider.c_str());
    }
  }

  const auto legacy = deploy::legacy_plan(deploy::legacy_gbps_server(),
                                          workload.demand_mbps);
  std::printf("\nLegacy flat allocation would need %zu x 1 Gbps at $%.0f/month"
              " (%.1fx more)\n",
              legacy.total_servers, legacy.total_cost_usd,
              legacy.total_cost_usd / plan.total_cost_usd);

  // 4. Placement near the core IXPs.
  const auto placement = deploy::place_servers(plan.total_servers);
  std::printf("\nPlacement (demand-proportional, every IXP domain covered):\n");
  const auto domains = deploy::ixp_domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    std::printf("  %-10s %zu server(s)\n", domains[i].city.c_str(),
                placement.servers_per_domain[i]);
  }
  return 0;
}
