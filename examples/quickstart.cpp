// Quickstart: run one Swiftest bandwidth test against a simulated 5G link.
//
//   $ ./examples/quickstart [true_bandwidth_mbps]
//
// Builds a client scenario (access link + 10 test servers), runs the
// data-driven UDP probing of §5.1, and prints the estimate next to the
// ground truth the simulator was configured with.
#include <cstdio>
#include <cstdlib>

#include "netsim/scenario.hpp"
#include "swiftest/client.hpp"

int main(int argc, char** argv) {
  using namespace swiftest;

  const double truth_mbps = argc > 1 ? std::atof(argv[1]) : 305.0;

  // The network under test: a 5G access link with typical mid-band latency.
  netsim::ScenarioConfig net;
  net.access_rate = core::Bandwidth::mbps(truth_mbps);
  net.access_delay = core::milliseconds(12);
  net.server_count = 10;
  netsim::Scenario scenario(net, /*seed=*/42);

  // The tester: Swiftest with the built-in 5G bandwidth model.
  swift::ModelRegistry registry;
  swift::SwiftestConfig cfg;
  cfg.tech = dataset::AccessTech::k5G;
  swift::SwiftestClient client(cfg, registry);

  const bts::BtsResult result = client.run(scenario);

  std::printf("Swiftest bandwidth test (simulated 5G access)\n");
  std::printf("  ground truth      : %.1f Mbps\n", truth_mbps);
  std::printf("  estimate          : %.1f Mbps (%.1f%% deviation)\n",
              result.bandwidth_mbps,
              100.0 * bts::deviation(result.bandwidth_mbps, truth_mbps));
  std::printf("  probe time        : %.2f s (+ %.2f s server selection)\n",
              core::to_seconds(result.probe_duration),
              core::to_seconds(result.ping_duration));
  std::printf("  data used         : %s over %zu server flow(s)\n",
              core::to_string(result.data_used).c_str(), result.connections_used);
  std::printf("  samples collected : %zu (every 50 ms)\n", result.samples_mbps.size());
  return 0;
}
