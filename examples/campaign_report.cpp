// Data pipeline end to end: generate a campaign, persist it as CSV, load it
// back (as an operator would load real exported data), and render the §3
// measurement report.
//
//   $ ./examples/campaign_report [tests] [csv_path]
#include <cstdio>
#include <cstdlib>

#include "analysis/report.hpp"
#include "dataset/generator.hpp"
#include "dataset/io.hpp"

int main(int argc, char** argv) {
  using namespace swiftest;

  const std::size_t tests = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                                     : 150'000;
  const std::string path = argc > 2 ? argv[2] : "/tmp/swiftest_campaign.csv";

  std::printf("Generating %zu tests and writing %s ...\n", tests, path.c_str());
  const auto campaign = dataset::generate_campaign(tests, 2021, 77);
  dataset::write_csv_file(path, campaign);

  std::printf("Loading the CSV back and analyzing...\n\n");
  const auto loaded = dataset::read_csv_file(path);
  std::fputs(analysis::generate_report(loaded).c_str(), stdout);
  return 0;
}
