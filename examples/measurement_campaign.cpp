// The analyst's workflow of §3: generate a measurement campaign and extract
// the paper's headline findings from it.
//
//   $ ./examples/measurement_campaign [tests] [year]
#include <cstdio>
#include <cstdlib>

#include "analysis/campaign_stats.hpp"
#include "dataset/generator.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace swiftest;
  using dataset::AccessTech;

  const std::size_t tests = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                                     : 300'000;
  const int year = argc > 2 ? std::atoi(argv[2]) : 2021;

  std::printf("Generating a %zu-test campaign for %d...\n", tests, year);
  const auto records = dataset::generate_campaign(tests, year, /*seed=*/7);

  std::printf("\n-- Per-technology bandwidth --\n");
  for (auto tech : {AccessTech::k4G, AccessTech::k5G, AccessTech::kWiFi4,
                    AccessTech::kWiFi5, AccessTech::kWiFi6}) {
    const auto s = analysis::tech_summary(records, tech);
    std::printf("  %-6s n=%-7zu mean=%6.1f median=%6.1f max=%7.1f Mbps\n",
                to_string(tech).c_str(), s.count, s.mean, s.median, s.max);
  }

  std::printf("\n-- The 4G story (Fig 4-6) --\n");
  const auto lte = analysis::bandwidths(records, AccessTech::k4G);
  std::printf("  below 10 Mbps: %.1f%%; above 300 Mbps (LTE-Advanced): %.1f%%, "
              "averaging %.0f Mbps\n",
              100.0 * stats::fraction_below(lte, 10.0),
              100.0 * stats::fraction_above(lte, 300.0),
              stats::mean_above(lte, 300.0));
  for (const auto& band : analysis::lte_band_stats(records)) {
    if (band.tests < 100) continue;
    std::printf("  %-4s %8zu tests  avg %5.1f Mbps  %s%s\n", band.name.c_str(),
                band.tests, band.mean_mbps, band.high_bandwidth ? "H-Band" : "L-Band",
                band.refarmed ? ", refarmed to 5G" : "");
  }

  std::printf("\n-- The 5G story (Fig 8, 12) --\n");
  for (const auto& band : analysis::nr_band_stats(records)) {
    if (band.tests < 100) continue;
    std::printf("  %-4s %8zu tests  avg %5.1f Mbps  %s\n", band.name.c_str(), band.tests,
                band.mean_mbps, band.refarmed ? "refarmed" : "dedicated");
  }
  const auto rss = analysis::mean_by_rss(records, AccessTech::k5G);
  std::printf("  5G by RSS level 1..5: %.0f %.0f %.0f %.0f %.0f Mbps"
              "  <- note the level-5 dip\n",
              rss[0], rss[1], rss[2], rss[3], rss[4]);

  std::printf("\n-- The WiFi story (Fig 15-16) --\n");
  const auto w4 = analysis::wifi_radio_summary(records, AccessTech::kWiFi4,
                                               dataset::WifiRadio::k5GHz);
  const auto w5 = analysis::wifi_radio_summary(records, AccessTech::kWiFi5,
                                               dataset::WifiRadio::k5GHz);
  std::printf("  on 5 GHz, WiFi4 vs WiFi5: %.0f vs %.0f Mbps (nearly equal)\n", w4.mean,
              w5.mean);
  std::printf("  WiFi5 users on <=200 Mbps broadband plans: %.0f%%\n",
              100.0 * analysis::plan_share_leq(records, AccessTech::kWiFi5, 200));
  return 0;
}
