// Customized measurement (the release's "develop Swiftest for customized
// mobile measurements" path): fit a bandwidth model from *your own* recent
// test results, install it in the registry, and probe with it.
//
// Here the "operator's data" is a batch of recent WiFi 6 campaign results;
// in a real deployment it would be last month's production test records.
#include <cstdio>

#include "analysis/campaign_stats.hpp"
#include "dataset/generator.hpp"
#include "netsim/scenario.hpp"
#include "stats/gmm.hpp"
#include "swiftest/client.hpp"

int main() {
  using namespace swiftest;
  using dataset::AccessTech;

  // 1. Collect recent results for the population you serve.
  const auto records = dataset::generate_campaign(120'000, 2021, 99);
  const auto wifi6 = analysis::bandwidths(records, AccessTech::kWiFi6);
  std::printf("Fitting a bandwidth model from %zu recent WiFi 6 tests...\n",
              wifi6.size());

  // 2. Fit the multi-modal Gaussian (BIC selects the mode count).
  const auto fit = stats::fit_gmm_bic(wifi6, 2, 6);
  std::printf("Fitted %zu modes:\n", fit.mixture.component_count());
  for (const auto& c : fit.mixture.components()) {
    std::printf("  weight %.2f  N(%.0f Mbps, %.0f)\n", c.weight, c.dist.mean,
                c.dist.stddev);
  }
  std::printf("Initial probing rate will be %.0f Mbps (the most probable mode).\n\n",
              fit.mixture.most_probable_mode());

  // 3. Install the model and run tests with it.
  swift::ModelRegistry registry;
  registry.set_model(AccessTech::kWiFi6, fit.mixture);

  for (double truth : {120.0, 480.0, 900.0}) {
    netsim::ScenarioConfig net;
    net.access_rate = core::Bandwidth::mbps(truth);
    net.access_delay = core::milliseconds(4);
    netsim::Scenario scenario(net, 4242);

    swift::SwiftestConfig cfg;
    cfg.tech = AccessTech::kWiFi6;
    swift::SwiftestClient client(cfg, registry);
    const auto result = client.run(scenario);
    std::printf("truth %6.0f Mbps -> estimate %6.1f Mbps in %.2f s using %s\n", truth,
                result.bandwidth_mbps, core::to_seconds(result.probe_duration),
                core::to_string(result.data_used).c_str());
  }
  return 0;
}
